"""Predictive warm-pool autoscaling.

The seed system resizes warm pools *on miss*: the first invocation of an
image on a node pays the cold start, and only then is a container parked.
The autoscaler closes that gap the way Kernel-as-a-Service does for
accelerator backends — a periodic control loop compares the forecast
demand against the currently parked containers and pre-warms the deficit
*before* the invocations arrive:

1. each tick, observe supply (registered executor cores) into the
   forecaster and read the per-function demand forecast over the
   provisioning horizon;
2. convert it into a warm-container target per image (with headroom);
3. spread the deficit across topology node groups round-robin, so a
   whole-group failure cannot take every warm container with it;
4. start containers through the normal ``WarmPool.acquire`` path (paying
   the real cold-start time in simulation) and park them.

A node that crashes and heals (``FaultPlan`` node-crash with a recovery
duration) re-registers with an empty pool; the next tick sees the
deficit and re-provisions it — chaos makes the loop visible, not stuck.

With ``predictive=False`` the loop only records supply observations,
giving experiments a true reactive baseline under identical wiring.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..cluster.machine import Cluster
from ..cluster.node import AllocationError
from ..rfaas.manager import ResourceManager
from ..rfaas.registry import FunctionRegistry
from ..sim.engine import Environment, Interrupt
from ..telemetry import telemetry_of
from .forecast import DemandForecaster

__all__ = ["AutoscalerConfig", "WarmPoolAutoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Control-loop knobs of the warm-pool autoscaler."""

    #: Seconds between control-loop ticks.
    interval_s: float = 0.5
    #: How far ahead demand is provisioned for.
    horizon_s: float = 1.0
    #: Quantile of the sliding-window rate used for sizing.
    percentile: float = 0.9
    #: Multiplier on the forecast (provision above the point estimate).
    headroom: float = 1.2
    #: Cap on warm containers per image per node.
    max_warm_per_node: int = 4
    #: Provision ahead of demand; False = reactive baseline (on-miss only).
    predictive: bool = True
    #: Evict parked containers above target (off: keep-warm-forever).
    shrink: bool = False

    def __post_init__(self):
        if self.interval_s <= 0 or self.horizon_s <= 0:
            raise ValueError("interval_s and horizon_s must be positive")
        if not 0.0 <= self.percentile <= 1.0:
            raise ValueError("percentile must be in [0, 1]")
        if self.headroom <= 0 or self.max_warm_per_node < 1:
            raise ValueError("invalid headroom/max_warm_per_node")


class WarmPoolAutoscaler:
    """Periodic control loop resizing warm pools ahead of demand."""

    def __init__(
        self,
        env: Environment,
        manager: ResourceManager,
        cluster: Cluster,
        functions: FunctionRegistry,
        forecaster: DemandForecaster,
        config: Optional[AutoscalerConfig] = None,
    ):
        self.env = env
        self.manager = manager
        self.cluster = cluster
        self.functions = functions
        self.forecaster = forecaster
        self.config = config or AutoscalerConfig()
        self._proc = None
        self._stopped = False
        self._pending: dict[str, int] = {}
        self.prewarms = 0
        self.shrinks = 0
        self.ticks = 0
        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_target = metrics.gauge(
            "repro_capacity_warm_target_count",
            help="warm containers the autoscaler is currently aiming for",
        )
        self._m_prewarms = metrics.counter(
            "repro_capacity_prewarms_total",
            help="containers started ahead of demand by the autoscaler",
        )
        self._m_supply = metrics.gauge(
            "repro_capacity_supply_cores_count",
            help="registered executor cores observed at the last tick",
        )

    # -- lifecycle ------------------------------------------------------------
    def start(self):
        """Kick off the control loop (idempotent)."""
        if self._proc is None or self._proc.triggered:
            self._stopped = False
            self._proc = self.env.process(self._loop(), name="autoscaler")
        return self._proc

    def stop(self) -> None:
        """Stop the loop so the event queue can drain."""
        self._stopped = True
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt(cause="autoscaler-stop")

    @property
    def running(self) -> bool:
        return self._proc is not None and self._proc.is_alive

    # -- sizing ---------------------------------------------------------------
    def _image_targets(self, now: float) -> dict[str, int]:
        """Warm-container target per image name from the demand forecast."""
        targets: dict[str, int] = {}
        for fname in self.forecaster.functions_seen():
            if fname not in self.functions:
                continue
            fdef = self.functions.lookup(fname)
            expected = self.forecaster.forecast_arrivals(
                now, self.config.horizon_s, q=self.config.percentile,
                function=fname,
            )
            target = math.ceil(self.config.headroom * expected)
            if target > 0:
                name = fdef.image.name
                targets[name] = targets.get(name, 0) + target
        return targets

    def _warm_now(self, image_name: str) -> int:
        """Containers already serving or parked for ``image_name``."""
        count = 0
        for node_name in self.manager.registered_nodes():
            info = self.manager.node_info(node_name)
            count += info.warm_pool.warm_count_for(image_name)
            if image_name in info.executor._attached:
                count += 1
        return count

    def _spread(self, deficit: int, image_name: str) -> list[str]:
        """Round-robin the deficit across node groups, then nodes.

        Returns one node name per container to start; nodes already at
        ``max_warm_per_node`` for the image drop out of the rotation.
        """
        groups: dict[int, list[str]] = {}
        for node_name in self.manager.registered_nodes():
            gid = self.cluster.topology.group_of(self.cluster.node_index(node_name))
            groups.setdefault(gid, []).append(node_name)
        rotations = [sorted(names) for _, names in sorted(groups.items())]
        budget = {
            name: max(
                0,
                self.config.max_warm_per_node
                - self.manager.node_info(name).warm_pool.warm_count_for(image_name),
            )
            for rotation in rotations for name in rotation
        }
        placements: list[str] = []
        while len(placements) < deficit and rotations:
            progressed = False
            for rotation in rotations:
                for name in rotation:
                    if budget[name] > 0:
                        placements.append(name)
                        budget[name] -= 1
                        progressed = True
                        break
                if len(placements) >= deficit:
                    break
            if not progressed:
                break  # every node is at its per-node cap
        return placements

    # -- the loop --------------------------------------------------------------
    def _loop(self):
        try:
            while not self._stopped:
                yield self.env.timeout(self.config.interval_s)
                if self._stopped:
                    return
                self.ticks += 1
                now = self.env.now
                supply = self.manager.total_registered_cores()
                self.forecaster.observe_supply(now, supply)
                self._m_supply.set(supply)
                if not self.config.predictive:
                    continue
                targets = self._image_targets(now)
                self._m_target.set(sum(targets.values()))
                for image_name in sorted(targets):
                    self._resize(image_name, targets[image_name])
        except Interrupt:
            return

    def _resize(self, image_name: str, target: int) -> None:
        current = self._warm_now(image_name) + self._pending.get(image_name, 0)
        if current < target:
            self._grow(image_name, target - current)
        elif self.config.shrink and current > target:
            self._shrink(image_name, current - target)

    def _grow(self, image_name: str, deficit: int) -> None:
        """Fan the deficit out as concurrent per-node prewarm processes.

        Cold starts for different (node, image) placements overlap in
        time instead of queueing behind each other — the in-flight count
        in ``_pending`` keeps the next tick from double-provisioning
        containers that are still starting.
        """
        image = self._image_of(image_name)
        if image is None:
            return
        per_node: dict[str, int] = {}
        for node_name in self._spread(deficit, image_name):
            per_node[node_name] = per_node.get(node_name, 0) + 1
        for node_name in sorted(per_node):
            want = per_node[node_name]
            self._pending[image_name] = self._pending.get(image_name, 0) + want
            self.env.process(
                self._grow_node(image, node_name, want),
                name=f"prewarm-{node_name}-{image_name}",
            )

    def _grow_node(self, image, node_name: str, want: int):
        image_name = image.name
        try:
            if self._stopped or not self.manager.is_registered(node_name):
                return
            pool = self.manager.node_info(node_name).warm_pool
            # ``acquire`` hands back an existing warm container before it
            # cold-starts a new one, so to *grow* the pool we hold the
            # warm ones aside until enough fresh containers exist.
            held = []
            created = 0
            while created < want:
                try:
                    acquired = pool.acquire(image)
                except AllocationError:
                    break  # node out of memory; keep what we have
                held.append(acquired.container)
                if acquired.kind == "warm":
                    continue
                created += 1
                if acquired.startup_cost_s > 0:
                    yield self.env.timeout(acquired.startup_cost_s)
                self.prewarms += 1
                self._m_prewarms.inc()
                self._tracer.instant(
                    "capacity.prewarm", track="capacity",
                    node=node_name, image=image_name, kind=acquired.kind,
                )
                if self._stopped:
                    break
            # The node may have been reclaimed (or reclaimed and freshly
            # re-registered with a new pool) while containers were
            # starting; only park them if *this* pool is still the live one.
            live = (self.manager.is_registered(node_name)
                    and self.manager.node_info(node_name).warm_pool is pool)
            for container in held:
                if live:
                    pool.release(container)
                else:
                    pool.discard(container)
        finally:
            self._pending[image_name] = max(
                0, self._pending.get(image_name, 0) - want
            )

    def _shrink(self, image_name: str, excess: int) -> None:
        image = self._image_of(image_name)
        if image is None:
            return
        for node_name in reversed(self.manager.registered_nodes()):
            if excess <= 0:
                return
            pool = self.manager.node_info(node_name).warm_pool
            spare = pool.warm_count_for(image_name)
            if spare <= 0:
                continue
            victims = min(spare, excess)
            pool.reclaim(victims * image.runtime_memory_bytes, swap=True)
            self.shrinks += victims
            excess -= victims

    def _image_of(self, image_name: str):
        for fname in self.functions.names():
            fdef = self.functions.lookup(fname)
            if fdef.image.name == image_name:
                return fdef.image
        return None
