"""Capacity control plane: forecast, autoscale, admit, burst.

Closes the loop between the SLURM-side supply signal (harvested cores)
and the rFaaS-side demand signal (invocation arrivals):

* :class:`DemandForecaster` — EWMA + sliding-window-percentile demand
  estimates and harvested core-second supply accounting;
* :class:`WarmPoolAutoscaler` — resizes per-node warm pools ahead of
  predicted demand instead of on-miss;
* :class:`AdmissionController` — per-tenant token buckets, priority
  queueing, bounded depth with explicit
  :class:`~repro.rfaas.AdmissionRejected` backpressure;
* :class:`CloudBurstRouter` — admitted-but-unplaceable invocations run
  on the :class:`~repro.cloudfaas.CloudFaaSPlatform` baseline, billed
  through :mod:`repro.disagg.billing`;
* :class:`CapacityPlane` — the four pieces behind one governed
  ``invoke``; build it via ``Platform.build(..., capacity=...)``.
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionRejected,
    TenantQuota,
    TokenBucket,
)
from .autoscaler import AutoscalerConfig, WarmPoolAutoscaler
from .burst import BurstConfig, BurstRecord, CloudBurstRouter
from .forecast import DemandForecaster, ForecastConfig
from .plane import CapacityConfig, CapacityPlane, CapacityResult

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionRejected",
    "AutoscalerConfig",
    "BurstConfig",
    "BurstRecord",
    "CapacityConfig",
    "CapacityPlane",
    "CapacityResult",
    "CloudBurstRouter",
    "DemandForecaster",
    "ForecastConfig",
    "TenantQuota",
    "TokenBucket",
    "WarmPoolAutoscaler",
]
