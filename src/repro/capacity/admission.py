"""Admission control in front of the resource manager.

Without admission control, demand beyond the harvested supply turns into
redirect/retry loops: every client hammers ``ResourceManager.lease`` until
its deadline.  The admission controller converts that into explicit,
bounded behaviour:

* **per-tenant token buckets** — each tenant gets a sustained rate plus a
  burst allowance; excess arrivals wait rather than crowd out others;
* **priority queue** — waiting requests are served by (priority, arrival)
  order, so latency-critical tenants overtake best-effort ones;
* **bounded depth with backpressure** — once the queue is full the
  controller answers *now* with :class:`AdmissionRejected` instead of
  letting the backlog grow without bound.  An optional queue-wait bound
  rejects requests that would wait longer than they are worth.

The controller is deterministic: the serving order depends only on
priorities, arrival order, and bucket arithmetic — no randomness.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..rfaas.errors import AdmissionRejected
from ..sim.engine import Environment
from ..telemetry import telemetry_of
from ..telemetry.context import TraceContext

__all__ = [
    "TenantQuota",
    "TokenBucket",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionRejected",
]


@dataclass(frozen=True)
class TenantQuota:
    """Sustained request rate plus burst allowance for one tenant."""

    rate_per_s: float = 50.0
    burst: float = 10.0

    def __post_init__(self):
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.burst < 1:
            raise ValueError("burst must allow at least one request")


class TokenBucket:
    """Lazily refilled token bucket (tokens accrue with simulated time)."""

    __slots__ = ("rate", "capacity", "tokens", "last_t")

    #: Refill slack absorbing float residue: a sleep of exactly ``eta``
    #: must land with enough tokens, or the pump would micro-step time
    #: in ~1e-16 increments and never make progress.
    _EPS = 1e-9

    def __init__(self, quota: TenantQuota, now: float = 0.0):
        self.rate = quota.rate_per_s
        self.capacity = float(quota.burst)
        self.tokens = float(quota.burst)
        self.last_t = now

    def _refill(self, now: float) -> None:
        gap = now - self.last_t
        if gap > 0:
            self.tokens = min(self.capacity, self.tokens + gap * self.rate)
        self.last_t = now

    def try_take(self, now: float, cost: float = 1.0) -> bool:
        self._refill(now)
        if self.tokens >= cost - self._EPS:
            self.tokens = max(0.0, self.tokens - cost)
            return True
        return False

    def eta(self, now: float, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will be available (0 if now)."""
        self._refill(now)
        if self.tokens >= cost - self._EPS:
            return 0.0
        return (cost - self.tokens) / self.rate


@dataclass(frozen=True)
class AdmissionConfig:
    """Backpressure and quota knobs of the admission controller."""

    #: Requests allowed to wait; beyond this, reject immediately.
    max_queue_depth: int = 64
    #: Reject a queued request once it has waited this long (None: wait
    #: for tokens however long that takes).
    max_queue_wait_s: Optional[float] = None
    #: Quota applied to tenants without an explicit entry in ``quotas``.
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    #: Per-tenant overrides.
    quotas: dict[str, TenantQuota] = field(default_factory=dict)

    def __post_init__(self):
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be non-negative")
        if self.max_queue_wait_s is not None and self.max_queue_wait_s <= 0:
            raise ValueError("max_queue_wait_s must be positive when set")


class _QueueEntry:
    __slots__ = ("priority", "seq", "tenant", "cost", "event", "enqueued_at", "cancelled")

    def __init__(self, priority, seq, tenant, cost, event, enqueued_at):
        self.priority = priority
        self.seq = seq
        self.tenant = tenant
        self.cost = cost
        self.event = event
        self.enqueued_at = enqueued_at
        self.cancelled = False

    def __lt__(self, other: "_QueueEntry") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)


class AdmissionController:
    """Token-bucket + priority-queue gate in front of the manager."""

    def __init__(self, env: Environment, config: Optional[AdmissionConfig] = None):
        self.env = env
        self.config = config or AdmissionConfig()
        self._buckets: dict[str, TokenBucket] = {}
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._pump = None
        self.admitted = 0
        self.rejected = 0
        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_admitted = metrics.counter(
            "repro_capacity_admitted_total",
            help="invocations admitted past the quota gate",
        )
        self._m_rejected: dict = {}
        self._metrics = metrics
        self._m_wait = metrics.histogram(
            "repro_capacity_queue_wait_seconds",
            help="time admitted invocations spent queued for quota tokens",
        )
        self._m_depth = metrics.gauge(
            "repro_capacity_queue_depth_count",
            help="requests currently waiting in the admission queue",
        )

    # -- views ---------------------------------------------------------------
    def queue_depth(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    def bucket_for(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            quota = self.config.quotas.get(tenant, self.config.default_quota)
            bucket = self._buckets[tenant] = TokenBucket(quota, now=self.env.now)
        return bucket

    # -- the gate ------------------------------------------------------------
    def admit(self, tenant: str, priority: int = 1, cost: float = 1.0,
              ctx: Optional[TraceContext] = None):
        """Process body (``yield from`` it): returns seconds spent queued.

        Raises :class:`AdmissionRejected` with ``reason="queue_full"``
        when the bounded queue is at depth, or ``reason="timeout"`` when
        the request waited past ``max_queue_wait_s``.
        """
        bucket = self.bucket_for(tenant)
        # Fast path: nothing ahead of us and tokens available right now.
        if not self.queue_depth() and bucket.try_take(self.env.now, cost):
            self._note_admitted(tenant, 0.0, ctx)
            return 0.0
        if self.queue_depth() >= self.config.max_queue_depth:
            self._reject(tenant, "queue_full", ctx)
        entry = _QueueEntry(
            priority, next(self._seq), tenant, cost,
            self.env.event(), self.env.now,
        )
        heapq.heappush(self._queue, entry)
        self._m_depth.set(self.queue_depth())
        self._ensure_pump()
        max_wait = self.config.max_queue_wait_s
        if max_wait is None:
            yield entry.event
        else:
            timer = self.env.timeout(max_wait)
            yield self.env.any_of([entry.event, timer])
            if not entry.event.triggered:
                entry.cancelled = True
                self._m_depth.set(self.queue_depth())
                self._reject(tenant, "timeout", ctx)
        waited = self.env.now - entry.enqueued_at
        self._note_admitted(tenant, waited, ctx)
        return waited

    def _reject(self, tenant: str, reason: str,
                ctx: Optional[TraceContext] = None) -> None:
        self.rejected += 1
        counter = self._m_rejected.get(reason)
        if counter is None:
            counter = self._metrics.counter(
                "repro_capacity_rejected_total", labels={"reason": reason},
                help="invocations rejected by the admission gate, by reason",
            )
            self._m_rejected[reason] = counter
        counter.inc()
        self._tracer.instant(
            "capacity.reject", track="capacity", ctx=ctx,
            tenant=tenant, reason=reason,
        )
        raise AdmissionRejected(
            f"tenant {tenant!r} rejected: {reason}", reason=reason, tenant=tenant,
        )

    def _note_admitted(self, tenant: str, waited: float,
                       ctx: Optional[TraceContext] = None) -> None:
        self.admitted += 1
        self._m_admitted.inc()
        self._m_wait.observe(waited)
        self._tracer.instant(
            "capacity.admit", track="capacity", ctx=ctx,
            tenant=tenant, waited_s=waited,
        )

    # -- the pump -------------------------------------------------------------
    def _ensure_pump(self) -> None:
        if self._pump is None or self._pump.triggered:
            self._pump = self.env.process(self._drain(), name="admission-pump")

    def _drain(self):
        """Serve queued entries in (priority, arrival) order as tokens accrue."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            bucket = self.bucket_for(head.tenant)
            eta = bucket.eta(self.env.now, head.cost)
            if eta > 0:
                yield self.env.timeout(eta)
                continue  # re-examine: a higher-priority entry may have arrived
            bucket.try_take(self.env.now, head.cost)
            heapq.heappop(self._queue)
            self._m_depth.set(self.queue_depth())
            head.event.succeed()
