"""Cloud-burst overflow routing.

The paper prices harvested HPC capacity against commercial FaaS; the
burst router turns that comparison into a runtime mechanism.  When an
invocation is *admitted* (it passed the quota gate — the platform owes it
an answer) but *unplaceable* (the harvested pool has no room and the
retry budget is spent), the router executes it on the
:class:`~repro.cloudfaas.CloudFaaSPlatform` baseline instead of dropping
it, and accounts what that cost through :mod:`repro.disagg.billing` —
the "cost delta" of not having enough spare supercomputer.

Functions are registered with the cloud platform lazily on first
overflow, mirroring a deploy-on-demand bridge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cloudfaas.platform import CloudFaaSPlatform, CloudInvocation
from ..disagg.billing import FunctionBill
from ..rfaas.registry import FunctionDef
from ..sim.engine import Environment
from ..telemetry import telemetry_of
from ..telemetry.context import TraceContext

__all__ = ["BurstConfig", "BurstRecord", "CloudBurstRouter"]


@dataclass(frozen=True)
class BurstConfig:
    """Pricing of overflow capacity relative to the harvested pool."""

    #: Commercial FaaS price premium over harvested core-hours.
    premium: float = 3.0
    core_hour_price: float = 1.0
    gib_hour_price: float = 0.05
    #: Cores billed per cloud invocation (cloud functions are 1-vCPU here).
    billed_cores: int = 1

    def __post_init__(self):
        if self.premium <= 0 or self.core_hour_price < 0 or self.gib_hour_price < 0:
            raise ValueError("invalid pricing")
        if self.billed_cores < 1:
            raise ValueError("billed_cores must be >= 1")


@dataclass(frozen=True)
class BurstRecord:
    """One overflow invocation: the cloud breakdown plus its bill."""

    invocation: CloudInvocation
    cost: float

    @property
    def latency_s(self) -> float:
        return self.invocation.total_s


class CloudBurstRouter:
    """Sends admitted-but-unplaceable invocations to the cloud baseline."""

    def __init__(
        self,
        env: Environment,
        cloud: CloudFaaSPlatform,
        config: Optional[BurstConfig] = None,
    ):
        self.env = env
        self.cloud = cloud
        self.config = config or BurstConfig()
        self._registered: set[str] = set()
        self.bursts = 0
        self.total_cost = 0.0
        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_bursts = metrics.counter(
            "repro_capacity_bursts_total",
            help="invocations overflowed to the cloud baseline",
        )
        self._m_cost = metrics.counter(
            "repro_capacity_burst_cost_total",
            help="accumulated cloud-burst bill (currency units)",
        )
        self._m_latency = metrics.histogram(
            "repro_capacity_burst_seconds",
            help="end-to-end latency of cloud-burst invocations",
        )

    def _ensure_registered(self, fdef: FunctionDef) -> None:
        if fdef.name in self._registered:
            return
        self.cloud.register(fdef.name, fdef.image)
        self._registered.add(fdef.name)

    def burst(self, fdef: FunctionDef, payload_bytes: int = 0,
              ctx: Optional[TraceContext] = None):
        """Process body (``yield from``): run ``fdef`` on the cloud.

        Returns a :class:`BurstRecord`; the bill is the cloud run billed
        at the configured premium over harvested-pool prices.
        """
        self._ensure_registered(fdef)
        record: CloudInvocation = yield self.cloud.invoke(
            fdef.name,
            payload_bytes=payload_bytes,
            runtime_s=fdef.runtime_s,
            output_bytes=fdef.output_bytes,
        )
        bill = FunctionBill(
            cores=self.config.billed_cores,
            memory_bytes=fdef.image.runtime_memory_bytes + fdef.memory_bytes,
            duration_s=record.total_s,
            core_hour_price=self.config.core_hour_price * self.config.premium,
            gib_hour_price=self.config.gib_hour_price * self.config.premium,
        )
        cost = bill.cost()
        self.bursts += 1
        self.total_cost += cost
        self._m_bursts.inc()
        self._m_cost.inc(cost)
        self._m_latency.observe(record.total_s)
        self._tracer.instant(
            "capacity.burst", track="capacity", ctx=ctx,
            function=fdef.name, cold=record.cold,
            latency_s=record.total_s, cost=cost,
        )
        return BurstRecord(invocation=record, cost=cost)
