"""Demand/supply forecasting for the capacity control plane.

The controller of the paper registers harvested capacity *reactively*;
the capacity plane closes the loop by watching both sides of the market:

* **demand** — function invocation arrivals, per function name, smoothed
  two ways: a time-decayed EWMA (fast reaction to the current rate) and
  a sliding window of fixed-width buckets whose per-bucket rates give a
  percentile estimate (robust to bursts, the KaaS-autoscaling idea of
  provisioning for a high quantile rather than the mean);
* **supply** — harvested capacity observed at autoscaler ticks: the
  registered core count is integrated over time into harvested
  core-seconds, so "how much spare capacity did batch actually donate"
  is a first-class signal rather than a by-product.

The forecaster is a passive, deterministic data structure: no randomness,
no simulation processes, every estimate a pure function of what was
observed and the clock values passed in.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Optional

__all__ = ["ForecastConfig", "DemandForecaster"]

#: Key under which whole-plane arrivals are tracked alongside per-function ones.
_ALL = "<all>"


@dataclass(frozen=True)
class ForecastConfig:
    """Knobs of the demand/supply estimators."""

    #: EWMA time constant: observations older than ~tau_s barely count.
    tau_s: float = 2.0
    #: Sliding-window length for the percentile estimator.
    window_s: float = 10.0
    #: Width of one counting bucket inside the window.
    bucket_s: float = 0.5

    def __post_init__(self):
        if self.tau_s <= 0:
            raise ValueError("tau_s must be positive")
        if self.bucket_s <= 0 or self.window_s < self.bucket_s:
            raise ValueError("need 0 < bucket_s <= window_s")


class _EwmaRate:
    """Event-driven exponentially weighted arrival-rate estimate.

    Each arrival contributes its instantaneous rate (1/gap); weights
    decay continuously with the configured time constant, so the
    estimate is independent of how often anyone asks for it.
    """

    __slots__ = ("tau_s", "rate", "last_t", "count")

    def __init__(self, tau_s: float):
        self.tau_s = tau_s
        self.rate = 0.0
        self.last_t: Optional[float] = None
        self.count = 0

    def observe(self, now: float) -> None:
        if self.last_t is None:
            self.last_t = now
            self.count = 1
            return
        gap = now - self.last_t
        if gap < 0:
            raise ValueError("time went backwards")
        self.count += 1
        if gap == 0.0:
            # Simultaneous arrivals: each adds one event's worth of mass
            # at the current instant; approximate by bumping the rate by
            # one event per tau (the limit of the update below).
            self.rate += 1.0 / self.tau_s
            return
        weight = 1.0 - math.exp(-gap / self.tau_s)
        self.rate = (1.0 - weight) * self.rate + weight * (1.0 / gap)
        self.last_t = now

    def rate_at(self, now: float) -> float:
        """The decayed estimate at ``now`` (stale data fades out)."""
        if self.last_t is None or now <= self.last_t:
            return self.rate
        return self.rate * math.exp(-(now - self.last_t) / self.tau_s)


class _BucketWindow:
    """Fixed-width arrival buckets over a sliding window."""

    __slots__ = ("bucket_s", "n_buckets", "buckets")

    def __init__(self, bucket_s: float, window_s: float):
        self.bucket_s = bucket_s
        self.n_buckets = max(1, int(round(window_s / bucket_s)))
        # (bucket_index, count), oldest first; gaps mean empty buckets.
        self.buckets: deque[list] = deque()

    def observe(self, now: float) -> None:
        index = int(now / self.bucket_s)
        if self.buckets and self.buckets[-1][0] == index:
            self.buckets[-1][1] += 1
        else:
            self.buckets.append([index, 1])
        self._trim(index)

    def _trim(self, current_index: int) -> None:
        oldest_kept = current_index - self.n_buckets + 1
        while self.buckets and self.buckets[0][0] < oldest_kept:
            self.buckets.popleft()

    def rates(self, now: float) -> list[float]:
        """Per-bucket arrival rates across the window ending at ``now``.

        Buckets with no arrivals count as zero, so an idle stretch pulls
        the percentile down instead of silently vanishing.
        """
        current_index = int(now / self.bucket_s)
        self._trim(current_index)
        counts = {index: count for index, count in self.buckets}
        return [
            counts.get(index, 0) / self.bucket_s
            for index in range(current_index - self.n_buckets + 1, current_index + 1)
        ]

    def percentile_rate(self, q: float, now: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        rates = sorted(self.rates(now))
        if not rates:
            return 0.0
        idx = min(int(q * len(rates)), len(rates) - 1)
        return rates[idx]


class DemandForecaster:
    """Joint view of invocation demand and harvested supply."""

    def __init__(self, config: Optional[ForecastConfig] = None):
        self.config = config or ForecastConfig()
        self._ewma: dict[str, _EwmaRate] = {}
        self._window: dict[str, _BucketWindow] = {}
        # Supply integration state.
        self._supply_cores = 0.0
        self._supply_last_t: Optional[float] = None
        self._harvested_core_seconds = 0.0
        self.arrivals = 0

    # -- demand side ---------------------------------------------------------
    def _streams(self, key: str) -> tuple[_EwmaRate, _BucketWindow]:
        ewma = self._ewma.get(key)
        if ewma is None:
            ewma = self._ewma[key] = _EwmaRate(self.config.tau_s)
            self._window[key] = _BucketWindow(
                self.config.bucket_s, self.config.window_s
            )
        return ewma, self._window[key]

    def observe_arrival(self, now: float, function: Optional[str] = None) -> None:
        """Record one invocation arrival (for ``function``, and overall)."""
        self.arrivals += 1
        keys = [_ALL] if function is None else [_ALL, function]
        for key in keys:
            ewma, window = self._streams(key)
            ewma.observe(now)
            window.observe(now)

    def functions_seen(self) -> list[str]:
        return sorted(k for k in self._ewma if k != _ALL)

    def rate(self, now: float, function: Optional[str] = None) -> float:
        """EWMA arrivals/second (decayed to ``now``)."""
        key = _ALL if function is None else function
        ewma = self._ewma.get(key)
        return 0.0 if ewma is None else ewma.rate_at(now)

    def percentile_rate(self, now: float, q: float = 0.9,
                        function: Optional[str] = None) -> float:
        """The ``q``-quantile of per-bucket arrival rates in the window."""
        key = _ALL if function is None else function
        window = self._window.get(key)
        return 0.0 if window is None else window.percentile_rate(q, now)

    def forecast_arrivals(self, now: float, horizon_s: float, q: float = 0.9,
                          function: Optional[str] = None) -> float:
        """Expected arrivals in the next ``horizon_s`` seconds.

        Takes the *larger* of the EWMA and the window percentile: the
        EWMA reacts fast to a ramp, the percentile remembers bursts the
        EWMA has already forgotten.
        """
        if horizon_s < 0:
            raise ValueError("horizon_s must be non-negative")
        best = max(self.rate(now, function), self.percentile_rate(now, q, function))
        return best * horizon_s

    # -- supply side -----------------------------------------------------------
    def observe_supply(self, now: float, cores: float) -> None:
        """Record the currently harvested core count (step-wise signal)."""
        if cores < 0:
            raise ValueError("cores must be non-negative")
        if self._supply_last_t is not None:
            gap = now - self._supply_last_t
            if gap < 0:
                raise ValueError("time went backwards")
            self._harvested_core_seconds += self._supply_cores * gap
        self._supply_cores = float(cores)
        self._supply_last_t = now

    def supply_cores(self) -> float:
        """The most recently observed harvested core count."""
        return self._supply_cores

    def harvested_core_seconds(self, now: Optional[float] = None) -> float:
        """Core-seconds donated by batch so far (integral of the supply)."""
        total = self._harvested_core_seconds
        if now is not None and self._supply_last_t is not None:
            gap = now - self._supply_last_t
            if gap > 0:
                total += self._supply_cores * gap
        return total
