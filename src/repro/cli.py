"""Command-line experiment runner.

Usage::

    python -m repro list
    python -m repro run fig07 --set samples=100
    python -m repro run fig07 --trace trace.json --metrics-out metrics.txt
    python -m repro run all
    python -m repro telemetry summary trace.json
    python -m repro chaos --rates 0,8,16 --seed 1 --jobs 4
    python -m repro chaos --plan plan.json --spans spans.jsonl
    python -m repro autoscale --loads 1,4,16 --json autoscale.json
    python -m repro autoscale --no-crash --window 30
    python -m repro chaos --memservice
    python -m repro memdurability --factors 1,2,3 --json memdurability.json
    python -m repro managerha --standbys 0,1,2 --jobs 3
    python -m repro loadstorm --shards 1,2,4,8 --jobs 4
    python -m repro certify --budget 5 --standbys 1
    python -m repro sweep list
    python -m repro sweep chaos --jobs 8 --set "rates=(0, 8, 16)"

``--set key=value`` pairs are parsed as Python literals and forwarded to
the experiment's ``run()``.  ``--trace`` writes a Chrome ``trace_event``
JSON (open in Perfetto / about://tracing), ``--spans`` a JSONL span
dump, and ``--metrics-out`` a Prometheus-style text exposition; all
three observe the run through a :class:`~repro.telemetry.TelemetryCollector`
without perturbing simulated time.

The sweep commands (``chaos`` / ``autoscale`` / ``memdurability`` and
the generic ``sweep``) share one flag set — ``--jobs`` / ``--seed`` /
``--json`` / ``--stream-spans`` — and execute through
:func:`repro.sweep.run_sweep`: scenarios fan out across a process pool
and merge in canonical plan order, so the report, the ``--json`` file,
and the ``--stream-spans`` stream are byte-identical at every jobs
count.  The batch exporters (``--trace`` / ``--spans`` /
``--metrics-out``) observe the whole run in one process and therefore
require ``--jobs 1``.
"""

from __future__ import annotations

import argparse
import ast
import sys
import time
from typing import Any, Callable

from .experiments import (
    autoscale_sweep,
    chaos_sweep,
    fig01_utilization,
    fig07_latency,
    fig08_storage,
    fig09_cpu_sharing,
    fig10_utilization,
    fig11_memory_sharing,
    fig12_gpu_sharing,
    fig13_offloading,
    gpu_scaling_sweep,
    loadstorm_sweep,
    manager_failover_sweep,
    memdurability_sweep,
    tab03_idle_node,
)
from .experiments.base import get_sweep
from .faults import FaultPlan, certify
from .sweep import SweepScenarioError, run_sweep, sweep_names
from .telemetry import (
    MetricsRegistry,
    RedAggregator,
    SloConfig,
    SloMonitor,
    SpanPipeline,
    TelemetryCollector,
    critical_path_table,
    load_spans,
    span_summary_table,
    trace_index,
    trace_summaries,
    write_chrome_trace,
    write_prometheus_text,
    write_spans_jsonl,
)
from .analysis.tables import render_table

__all__ = ["EXPERIMENTS", "main"]

#: name -> (module, one-line description)
EXPERIMENTS: dict[str, tuple[Any, str]] = {
    "fig01": (fig01_utilization, "Piz Daint utilization: idle nodes, memory, idle periods"),
    "fig07": (fig07_latency, "rFaaS vs libfabric invocation latency"),
    "fig08": (fig08_storage, "Lustre vs MinIO function I/O"),
    "tab03": (tab03_idle_node, "idle-node throughput with NAS functions"),
    "fig09": (fig09_cpu_sharing, "CPU sharing: batch + FaaS-like workloads"),
    "fig10": (fig10_utilization, "system utilization across placement scenarios"),
    "fig11": (fig11_memory_sharing, "remote-memory traffic perturbation"),
    "fig12": (fig12_gpu_sharing, "GPU co-location overheads"),
    "fig13": (fig13_offloading, "real offloading: Black-Scholes + MC transport"),
    "chaos": (chaos_sweep, "invocation latency under injected faults"),
    "autoscale": (autoscale_sweep, "predictive vs reactive warm pools under load"),
    "memdurability": (memdurability_sweep, "replicated memory service under a crash+drain storm"),
    "gpu_scaling": (gpu_scaling_sweep, "GPU invocation batching: batch size vs throughput/latency"),
    "manager_failover": (manager_failover_sweep, "completion through manager crash/partition, by standby count"),
    "loadstorm": (loadstorm_sweep, "open-loop million-client lease churn vs control-plane shards"),
}


def _parse_overrides(pairs: list[str]) -> dict[str, Any]:
    overrides: dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        try:
            overrides[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            overrides[key] = raw  # plain string
    return overrides


def _run_one(name: str, overrides: dict[str, Any], out: Callable[[str], None]) -> None:
    module, _ = EXPERIMENTS[name]
    t0 = time.perf_counter()
    result = module.run(**overrides)
    elapsed = time.perf_counter() - t0
    out(module.format_report(result))
    out(f"[{name} completed in {elapsed:.2f}s]\n")


def _make_collector(args: argparse.Namespace) -> TelemetryCollector | None:
    """A collector when any telemetry export was requested.

    With ``--stream-spans`` the collector's sink is a bounded
    :class:`SpanPipeline` streaming every span to disk as it closes;
    the batch exporters then only see the flight-recorder tail.
    """
    stream = getattr(args, "stream_spans", None)
    if stream:
        return TelemetryCollector(pipeline=SpanPipeline(stream_path=stream))
    if args.trace or args.spans or args.metrics_out:
        return TelemetryCollector()
    return None


def _export_telemetry(collector: TelemetryCollector, args: argparse.Namespace,
                      out: Callable[[str], None]) -> None:
    pipeline = collector.pipeline
    if pipeline is not None:
        pipeline.close()
        stream = getattr(args, "stream_spans", None)
        out(f"[stream: {pipeline.seen} spans -> {stream} "
            f"(peak retained {pipeline.peak_retained}, "
            f"slo breaches {len(pipeline.slo.breaches)})]")
    if args.trace:
        n = write_chrome_trace(list(collector.spans), args.trace)
        out(f"[trace: {n} events -> {args.trace}]")
    if args.spans:
        n = write_spans_jsonl(collector.spans, args.spans)
        out(f"[spans: {n} spans -> {args.spans}]")
    if args.metrics_out:
        registries = collector.registries()
        if pipeline is not None:
            registries = registries + [pipeline.metrics]
        write_prometheus_text(registries, args.metrics_out)
        out(f"[metrics -> {args.metrics_out}]")


def _run_sweep_command(name: str, kwargs: dict[str, Any],
                       args: argparse.Namespace,
                       parser: argparse.ArgumentParser,
                       out: Callable[[str], None]) -> int:
    """Shared execution path of every sweep command.

    Fan-out and in-order merge go through :func:`repro.sweep.run_sweep`,
    so the report, ``--json`` file, and ``--stream-spans`` stream are
    byte-identical at every ``--jobs`` count.  The whole-run batch
    exporters (``--trace``/``--spans``/``--metrics-out``) observe one
    process and therefore require ``--jobs 1``.
    """
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    batch_exports = args.trace or args.spans or args.metrics_out
    if batch_exports and args.jobs != 1:
        parser.error("--trace/--spans/--metrics-out observe the whole run in "
                     "one process; use --jobs 1 (or --stream-spans, which "
                     "works at any jobs count)")
    t0 = time.perf_counter()
    stream_stats: dict[str, int] = {}
    collector = None
    try:
        if batch_exports:
            # Whole-run collector: the batch exporters (and a combined
            # --stream-spans) see every scenario in this process.
            collector = _make_collector(args)
            with collector:
                result = run_sweep(name, jobs=1, **kwargs)
        else:
            result = run_sweep(
                name, jobs=args.jobs, stream_spans=args.stream_spans,
                stream_stats=stream_stats, **kwargs,
            )
    except SweepScenarioError as exc:
        out(str(exc))
        return 1
    jobs_note = f" with {args.jobs} jobs" if args.jobs > 1 else ""
    out(result.format_report())
    out(f"[{name} completed in {time.perf_counter() - t0:.2f}s{jobs_note}]\n")
    if args.json_out:
        try:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                fh.write(result.to_json() + "\n")
        except OSError as exc:
            parser.error(f"cannot write JSON output: {exc}")
        out(f"[json -> {args.json_out}]")
    if collector is not None:
        _export_telemetry(collector, args, out)
    elif args.stream_spans:
        out(f"[stream: {stream_stats['seen']} spans -> {args.stream_spans} "
            f"(peak retained {stream_stats['peak_retained']}, "
            f"slo breaches {stream_stats['slo_breaches']})]")
    return 0


def _run_obs(args: argparse.Namespace, parser: argparse.ArgumentParser,
             out: Callable[[str], None]) -> int:
    """The ``repro obs`` family: analyse an exported span file."""
    try:
        spans = load_spans(args.tracefile)
    except OSError as exc:
        parser.error(f"cannot read trace file: {exc}")

    if args.obs_command == "critical-path":
        summaries = trace_summaries(spans)
        if not summaries:
            out("no spans with a trace_id (was the run traced?)")
            return 1
        if args.all:
            rows = [[s["trace_id"], s["root"], s["spans"],
                     f"{s['start']:.6f}", f"{s['duration_s']:.6f}"]
                    for s in summaries]
            out(render_table(["trace", "root", "spans", "start", "duration_s"],
                             rows, title=f"{len(summaries)} trace(s)"))
            return 0
        traces = trace_index(spans)
        if args.trace_id is not None:
            if args.trace_id not in traces:
                parser.error(f"trace {args.trace_id} not in {args.tracefile}")
            chosen = args.trace_id
        else:
            chosen = max(summaries, key=lambda s: s["duration_s"])["trace_id"]
        out(critical_path_table(traces[chosen], trace_id=chosen))
        return 0

    if args.obs_command == "slo":
        config = SloConfig(latency_threshold_s=args.threshold,
                           error_budget=args.budget, window_s=args.window)
        monitor = SloMonitor(MetricsRegistry(lambda: 0.0, scope="replay"), config)
        for span in spans:
            monitor.observe(span)
        rows = [[b.attrs["tenant"], f"{b.start:.3f}", b.attrs["burn_rate"],
                 b.attrs["bad"], b.attrs["total"]]
                for b in monitor.breaches]
        if rows:
            out(render_table(["tenant", "t", "burn_rate", "bad", "total"], rows,
                             title=f"{len(rows)} slo.breach episode(s)"))
        else:
            out("no SLO breaches")
        return 0

    if args.obs_command == "red":
        red = RedAggregator(MetricsRegistry(lambda: 0.0, scope="replay"))
        for span in spans:
            red.observe(span)
        rows = [[r["tenant"], r["count"], r["errors"], f"{r['mean']:.6f}",
                 f"{r['p50']:.6f}", f"{r['p95']:.6f}", f"{r['p99']:.6f}"]
                for r in red.table()]
        if rows:
            out(render_table(
                ["tenant", "requests", "errors", "mean_s", "p50_s", "p95_s", "p99_s"],
                rows, title="per-tenant RED rollup"))
        else:
            out("no request-root spans (capacity.invocation / rfaas.request)")
        return 0

    # obs tail
    closed = [s for s in spans if s.end is not None]
    rows = [[s.attrs.get("trace_id", ""), s.name, s.track,
             f"{s.start:.6f}", f"{s.duration:.6f}"]
            for s in closed[-max(args.count, 0):]]
    out(render_table(["trace", "span", "track", "start", "duration_s"], rows,
                     title=f"last {len(rows)} of {len(closed)} span(s)"))
    return 0


def main(argv: list[str] | None = None, out: Callable[[str], None] = print) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run_parser.add_argument(
        "--set", action="append", default=[], metavar="key=value",
        help="override a run() keyword argument (repeatable)",
    )
    run_parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a Chrome trace_event JSON of the run (Perfetto-loadable)",
    )
    run_parser.add_argument(
        "--spans", metavar="FILE", default=None,
        help="write a JSONL dump of all recorded spans",
    )
    run_parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write a Prometheus-style text dump of all metrics",
    )
    run_parser.add_argument(
        "--stream-spans", metavar="FILE", default=None,
        help="stream spans to FILE as JSONL while the run executes "
             "(bounded memory; batch exports then cover only the tail)",
    )
    chaos_parser = sub.add_parser(
        "chaos", help="fault-injection sweep: latency/recovery under faults",
    )
    chaos_parser.add_argument(
        "--plan", metavar="FILE", default=None,
        help="JSON FaultPlan to replay (instead of the built-in rate sweep)",
    )
    chaos_parser.add_argument(
        "--rates", default=None, metavar="R1,R2,...",
        help="comma-separated fault rates (events per simulated minute)",
    )
    chaos_parser.add_argument("--seed", type=int, default=0)
    chaos_parser.add_argument(
        "--window", type=float, default=30.0, metavar="SECONDS",
        help="simulated measurement window per scenario",
    )
    chaos_parser.add_argument(
        "--memservice", action="store_true",
        help="co-run a remote-paging stream on a replicated (k=2) memory "
             "service, so the storm also exercises durable-memory failover",
    )
    chaos_parser.add_argument(
        "--json", metavar="FILE", default=None, dest="json_out",
        help="write the machine-readable sweep result as JSON",
    )
    autoscale_parser = sub.add_parser(
        "autoscale", help="capacity sweep: predictive vs reactive warm pools",
    )
    autoscale_parser.add_argument(
        "--loads", default=None, metavar="L1,L2,...",
        help="comma-separated load multipliers (default 1,4,16)",
    )
    autoscale_parser.add_argument("--seed", type=int, default=0)
    autoscale_parser.add_argument(
        "--window", type=float, default=20.0, metavar="SECONDS",
        help="simulated arrival window per scenario",
    )
    autoscale_parser.add_argument(
        "--plan", metavar="FILE", default=None,
        help="JSON FaultPlan to replay (instead of the built-in crash storm)",
    )
    autoscale_parser.add_argument(
        "--no-crash", action="store_true",
        help="disable the default node-crash storm",
    )
    autoscale_parser.add_argument(
        "--json", metavar="FILE", default=None, dest="json_out",
        help="write the machine-readable sweep result as JSON",
    )
    memdur_parser = sub.add_parser(
        "memdurability",
        help="durable-memory sweep: replication factors under a crash+drain storm",
    )
    memdur_parser.add_argument(
        "--factors", default=None, metavar="K1,K2,...",
        help="comma-separated replication factors (default 1,2,3)",
    )
    memdur_parser.add_argument("--seed", type=int, default=0)
    memdur_parser.add_argument(
        "--window", type=float, default=20.0, metavar="SECONDS",
        help="simulated paging window per factor",
    )
    memdur_parser.add_argument(
        "--accesses", type=int, default=400,
        help="pager accesses replayed per factor",
    )
    memdur_parser.add_argument(
        "--json", metavar="FILE", default=None, dest="json_out",
        help="write the machine-readable sweep result as JSON",
    )
    managerha_parser = sub.add_parser(
        "managerha",
        help="control-plane HA sweep: completion through manager crash/partition",
    )
    managerha_parser.add_argument(
        "--standbys", default=None, metavar="K1,K2,...",
        help="comma-separated standby counts (default 0,1,2)",
    )
    managerha_parser.add_argument("--seed", type=int, default=0)
    managerha_parser.add_argument(
        "--window", type=float, default=20.0, metavar="SECONDS",
        help="simulated measurement window per standby count",
    )
    managerha_parser.add_argument(
        "--json", metavar="FILE", default=None, dest="json_out",
        help="write the machine-readable sweep result as JSON",
    )
    loadstorm_parser = sub.add_parser(
        "loadstorm",
        help="shard sweep: open-loop million-client lease churn vs shard count",
    )
    loadstorm_parser.add_argument(
        "--shards", default=None, metavar="N1,N2,...",
        help="comma-separated shard counts (default 1,2,4,8)",
    )
    loadstorm_parser.add_argument("--seed", type=int, default=0)
    loadstorm_parser.add_argument(
        "--window", type=float, default=8.0, metavar="SECONDS",
        help="simulated arrival window per shard count",
    )
    loadstorm_parser.add_argument(
        "--rate", type=float, default=3000.0, metavar="REQ_PER_S",
        help="open-loop arrival rate (default 3000)",
    )
    loadstorm_parser.add_argument(
        "--population", type=int, default=1_200_000, metavar="N",
        help="synthetic tenant population behind the Zipf mix (default 1.2M)",
    )
    loadstorm_parser.add_argument(
        "--arrival", choices=("poisson", "mmpp"), default="poisson",
        help="arrival process (default poisson)",
    )
    loadstorm_parser.add_argument(
        "--crash-at", type=float, default=0.0, metavar="FRACTION",
        dest="crash_at", help="crash the last shard at this fraction of the "
                              "window (0 disables; default 0)",
    )
    loadstorm_parser.add_argument(
        "--json", metavar="FILE", default=None, dest="json_out",
        help="write the machine-readable sweep result as JSON",
    )
    certify_parser = sub.add_parser(
        "certify",
        help="chaos certification: control-plane invariants under randomized "
             "fault schedules",
    )
    certify_parser.add_argument(
        "--budget", type=int, default=5, metavar="N",
        help="randomized schedules to run (default 5)",
    )
    certify_parser.add_argument("--seed", type=int, default=0)
    certify_parser.add_argument(
        "--standbys", type=int, default=1, metavar="K",
        help="control-plane standby replicas (default 1)",
    )
    certify_parser.add_argument(
        "--window", type=float, default=8.0, metavar="SECONDS",
        help="simulated window per schedule",
    )
    certify_parser.add_argument(
        "--events", type=int, default=6, metavar="N",
        help="fault events drawn per schedule",
    )
    certify_parser.add_argument(
        "--json", metavar="FILE", default=None, dest="json_out",
        help="write the machine-readable certification report as JSON",
    )
    generic_sweep_parser = sub.add_parser(
        "sweep",
        help="run any registered sweep ('sweep list' shows them) across a pool",
    )
    generic_sweep_parser.add_argument(
        "name", choices=[*sweep_names(), "list"],
        help="registered sweep name, or 'list' to enumerate the registry",
    )
    generic_sweep_parser.add_argument(
        "--set", action="append", default=[], metavar="key=value",
        help="override a plan_scenarios() keyword argument (repeatable)",
    )
    generic_sweep_parser.add_argument("--seed", type=int, default=0)
    for sweep_parser in (chaos_parser, autoscale_parser, memdur_parser,
                         managerha_parser, loadstorm_parser,
                         generic_sweep_parser):
        sweep_parser.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes to fan scenarios across (default 1; "
                 "the merged result is byte-identical at any count)",
        )
        sweep_parser.add_argument("--trace", metavar="FILE", default=None,
                                  help="write a Chrome trace_event JSON of the "
                                       "run (requires --jobs 1)")
        sweep_parser.add_argument("--spans", metavar="FILE", default=None,
                                  help="write a JSONL dump of all recorded "
                                       "spans (requires --jobs 1)")
        sweep_parser.add_argument("--metrics-out", metavar="FILE", default=None,
                                  help="write a Prometheus-style text metrics "
                                       "dump (requires --jobs 1)")
        sweep_parser.add_argument(
            "--stream-spans", metavar="FILE", default=None,
            help="stream spans to FILE as JSONL while the run executes "
                 "(bounded memory; works at any --jobs count)",
        )
    generic_sweep_parser.add_argument(
        "--json", metavar="FILE", default=None, dest="json_out",
        help="write the machine-readable sweep result as JSON",
    )
    telemetry_parser = sub.add_parser(
        "telemetry", help="inspect exported telemetry",
    )
    telemetry_sub = telemetry_parser.add_subparsers(dest="telemetry_command", required=True)
    summary_parser = telemetry_sub.add_parser(
        "summary", help="per-span-kind latency table from a trace file",
    )
    summary_parser.add_argument(
        "tracefile", help="a --trace (Chrome JSON) or --spans (JSONL) file",
    )
    obs_parser = sub.add_parser(
        "obs", help="causal observability: critical paths, SLO burn, RED rollups",
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    cp_parser = obs_sub.add_parser(
        "critical-path", help="the latency-determining span chain of one trace",
    )
    cp_parser.add_argument("tracefile", help="a --spans / --stream-spans JSONL "
                                             "(or --trace Chrome JSON) file")
    cp_parser.add_argument(
        "--trace-id", type=int, default=None,
        help="trace to analyse (default: the longest-running one)",
    )
    cp_parser.add_argument(
        "--all", action="store_true",
        help="list every trace instead of analysing one",
    )
    slo_parser = obs_sub.add_parser(
        "slo", help="replay request spans through the burn-rate monitor",
    )
    slo_parser.add_argument("tracefile")
    slo_parser.add_argument("--threshold", type=float, default=1.0,
                            metavar="SECONDS",
                            help="latency above which a request is 'bad'")
    slo_parser.add_argument("--budget", type=float, default=0.01,
                            help="allowed bad-request fraction")
    slo_parser.add_argument("--window", type=float, default=60.0,
                            metavar="SECONDS", help="sliding window length")
    red_parser = obs_sub.add_parser(
        "red", help="per-tenant rate/errors/duration rollup of a span file",
    )
    red_parser.add_argument("tracefile")
    tail_parser = obs_sub.add_parser(
        "tail", help="the last N spans of a span file",
    )
    tail_parser.add_argument("tracefile")
    tail_parser.add_argument("-n", "--count", type=int, default=20)
    args = parser.parse_args(argv)

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (_, description) in EXPERIMENTS.items():
            out(f"{name.ljust(width)}  {description}")
        return 0

    if args.command == "telemetry":
        try:
            spans = load_spans(args.tracefile)
        except OSError as exc:
            parser.error(f"cannot read trace file: {exc}")
        out(span_summary_table(spans))
        return 0

    if args.command == "obs":
        return _run_obs(args, parser, out)

    if args.command == "chaos":
        kwargs: dict[str, Any] = {"seed": args.seed, "window_s": args.window,
                                  "memservice": args.memservice}
        if args.plan:
            try:
                kwargs["plan"] = FaultPlan.load(args.plan)
            except (OSError, ValueError, TypeError, KeyError) as exc:
                parser.error(f"cannot load fault plan: {exc}")
        if args.rates:
            if args.plan:
                parser.error("--rates and --plan are mutually exclusive")
            try:
                kwargs["rates"] = tuple(float(r) for r in args.rates.split(","))
            except ValueError:
                parser.error(f"--rates expects comma-separated numbers, got {args.rates!r}")
        return _run_sweep_command("chaos", kwargs, args, parser, out)

    if args.command == "memdurability":
        kwargs = {"seed": args.seed, "window_s": args.window,
                  "accesses": args.accesses}
        if args.factors:
            try:
                kwargs["factors"] = tuple(int(k) for k in args.factors.split(","))
            except ValueError:
                parser.error(f"--factors expects comma-separated integers, got {args.factors!r}")
        return _run_sweep_command("memdurability", kwargs, args, parser, out)

    if args.command == "managerha":
        kwargs = {"seed": args.seed, "window_s": args.window}
        if args.standbys:
            try:
                kwargs["standbys"] = tuple(int(k) for k in args.standbys.split(","))
            except ValueError:
                parser.error(f"--standbys expects comma-separated integers, got {args.standbys!r}")
        return _run_sweep_command("manager_failover", kwargs, args, parser, out)

    if args.command == "loadstorm":
        kwargs = {"seed": args.seed, "window_s": args.window,
                  "rate_per_s": args.rate, "population": args.population,
                  "arrival": args.arrival, "crash_at_frac": args.crash_at}
        if args.shards:
            try:
                kwargs["shards"] = tuple(int(n) for n in args.shards.split(","))
            except ValueError:
                parser.error(f"--shards expects comma-separated integers, got {args.shards!r}")
        return _run_sweep_command("loadstorm", kwargs, args, parser, out)

    if args.command == "certify":
        if args.budget < 1:
            parser.error("--budget must be >= 1")
        t0 = time.perf_counter()
        report = certify(budget=args.budget, seed=args.seed,
                         standbys=args.standbys, window_s=args.window,
                         events_per_schedule=args.events)
        out(report.format_report())
        out(f"[certify completed in {time.perf_counter() - t0:.2f}s]\n")
        if args.json_out:
            try:
                with open(args.json_out, "w", encoding="utf-8") as fh:
                    fh.write(report.to_json() + "\n")
            except OSError as exc:
                parser.error(f"cannot write JSON output: {exc}")
            out(f"[json -> {args.json_out}]")
        return 0 if report.ok else 1

    if args.command == "autoscale":
        kwargs = {"seed": args.seed, "window_s": args.window}
        if args.loads:
            try:
                kwargs["loads"] = tuple(float(l) for l in args.loads.split(","))
            except ValueError:
                parser.error(f"--loads expects comma-separated numbers, got {args.loads!r}")
        if args.plan:
            if args.no_crash:
                parser.error("--plan and --no-crash are mutually exclusive")
            try:
                kwargs["plan"] = FaultPlan.load(args.plan)
            except (OSError, ValueError, TypeError, KeyError) as exc:
                parser.error(f"cannot load fault plan: {exc}")
        if args.no_crash:
            kwargs["crash"] = False
        return _run_sweep_command("autoscale", kwargs, args, parser, out)

    if args.command == "sweep":
        if args.name == "list":
            names = sweep_names()
            width = max(len(n) for n in names)
            for n in names:
                out(f"{n.ljust(width)}  {get_sweep(n).description}")
            return 0
        kwargs = _parse_overrides(args.set)
        kwargs.setdefault("seed", args.seed)
        return _run_sweep_command(args.name, kwargs, args, parser, out)

    overrides = _parse_overrides(args.set)
    collector = _make_collector(args)
    # Fail on an unwritable export path up front, not after the run.
    for export_path in (args.trace, args.spans, args.metrics_out):
        if export_path:
            try:
                with open(export_path, "a", encoding="utf-8"):
                    pass
            except OSError as exc:
                parser.error(f"cannot write telemetry output: {exc}")

    def run_selected() -> None:
        if args.experiment == "all":
            if overrides:
                raise SystemExit("--set is only valid with a single experiment")
            for name in EXPERIMENTS:
                _run_one(name, {}, out)
        else:
            _run_one(args.experiment, overrides, out)

    if collector is not None:
        with collector:
            run_selected()
        _export_telemetry(collector, args, out)
    else:
        run_selected()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
