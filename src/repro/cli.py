"""Command-line experiment runner.

Usage::

    python -m repro list
    python -m repro run fig07 --set samples=100
    python -m repro run all

``--set key=value`` pairs are parsed as Python literals and forwarded to
the experiment's ``run()``.
"""

from __future__ import annotations

import argparse
import ast
import sys
import time
from typing import Any, Callable

from .experiments import (
    fig01_utilization,
    fig07_latency,
    fig08_storage,
    fig09_cpu_sharing,
    fig10_utilization,
    fig11_memory_sharing,
    fig12_gpu_sharing,
    fig13_offloading,
    tab03_idle_node,
)

__all__ = ["EXPERIMENTS", "main"]

#: name -> (module, one-line description)
EXPERIMENTS: dict[str, tuple[Any, str]] = {
    "fig01": (fig01_utilization, "Piz Daint utilization: idle nodes, memory, idle periods"),
    "fig07": (fig07_latency, "rFaaS vs libfabric invocation latency"),
    "fig08": (fig08_storage, "Lustre vs MinIO function I/O"),
    "tab03": (tab03_idle_node, "idle-node throughput with NAS functions"),
    "fig09": (fig09_cpu_sharing, "CPU sharing: batch + FaaS-like workloads"),
    "fig10": (fig10_utilization, "system utilization across placement scenarios"),
    "fig11": (fig11_memory_sharing, "remote-memory traffic perturbation"),
    "fig12": (fig12_gpu_sharing, "GPU co-location overheads"),
    "fig13": (fig13_offloading, "real offloading: Black-Scholes + MC transport"),
}


def _parse_overrides(pairs: list[str]) -> dict[str, Any]:
    overrides: dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        try:
            overrides[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            overrides[key] = raw  # plain string
    return overrides


def _run_one(name: str, overrides: dict[str, Any], out: Callable[[str], None]) -> None:
    module, _ = EXPERIMENTS[name]
    t0 = time.perf_counter()
    result = module.run(**overrides)
    elapsed = time.perf_counter() - t0
    out(module.format_report(result))
    out(f"[{name} completed in {elapsed:.2f}s]\n")


def main(argv: list[str] | None = None, out: Callable[[str], None] = print) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run_parser.add_argument(
        "--set", action="append", default=[], metavar="key=value",
        help="override a run() keyword argument (repeatable)",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (_, description) in EXPERIMENTS.items():
            out(f"{name.ljust(width)}  {description}")
        return 0

    overrides = _parse_overrides(args.set)
    if args.experiment == "all":
        if overrides:
            raise SystemExit("--set is only valid with a single experiment")
        for name in EXPERIMENTS:
            _run_one(name, {}, out)
    else:
        _run_one(args.experiment, overrides, out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
