"""Software disaggregation: controller, billing, utilization metrics."""

from .billing import FunctionBill, JobBill, core_hour_discount
from .controller import ControllerConfig, DisaggregationController
from .metrics import ScenarioUtilization, colocation_scenarios

__all__ = [
    "FunctionBill",
    "JobBill",
    "core_hour_discount",
    "ControllerConfig",
    "DisaggregationController",
    "ScenarioUtilization",
    "colocation_scenarios",
]
