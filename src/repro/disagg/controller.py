"""The software disaggregation controller (the paper's core contribution).

Wires the batch system to the serverless platform (Fig. 2 / Fig. 6):

* **idle nodes** (Sec. III-A): when a node has no batch owner it is
  registered with the rFaaS resource manager — whole node, minutes of
  availability are enough;
* **partially allocated nodes** (Sec. III-B): when a consenting batch job
  starts, each of its nodes' leftover cores/memory/GPUs are registered,
  and the job's own resource demand is published to the load registry so
  the interference model sees the full tenant mix;
* **reclamation** (Sec. IV-E): just before the batch scheduler hands
  nodes to a new job, any serverless registration on them is removed —
  immediately (abort invocations) or gracefully, per configuration.

The controller is deliberately decentralized-friendly: it only uses the
scheduler's public hooks and the manager's register/remove API, i.e. the
integration requires *no* changes to the batch system itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..interference.model import ResourceDemand
from ..rfaas.executor import ExecutorMode
from ..rfaas.manager import ResourceManager
from ..slurm.job import Job
from ..slurm.scheduler import BatchScheduler

__all__ = ["ControllerConfig", "DisaggregationController"]

GiB = 1024**3


@dataclass(frozen=True)
class ControllerConfig:
    """Knobs of the disaggregation loop."""

    # Keep this many cores per node unavailable to functions so batch
    # ranks always have a core to handle their own work (job striping
    # keeps >= 1 core free, Sec. III).
    reserve_cores: int = 0
    # Don't bother registering a node slice smaller than this.
    min_cores: int = 1
    min_memory_bytes: int = 1 * GiB
    # Fraction of free memory offered to functions (headroom for the
    # batch job's own growth).
    memory_headroom: float = 0.9
    # Reclaim style when batch needs nodes back.
    immediate_reclaim: bool = True
    executor_mode: str = ExecutorMode.HOT
    harvest_idle_nodes: bool = True
    harvest_shared_jobs: bool = True

    def __post_init__(self):
        if self.reserve_cores < 0 or self.min_cores < 1:
            raise ValueError("invalid core thresholds")
        if not 0 < self.memory_headroom <= 1:
            raise ValueError("memory_headroom in (0, 1]")


#: Maps a job to the per-node demand vector it exerts (or None = unknown).
DemandResolver = Callable[[Job], Optional[ResourceDemand]]


def _default_demand(job: Job) -> ResourceDemand:
    """Generic batch-job profile when no app model is known: moderate
    bandwidth per rank, mixed boundness."""
    ranks = job.spec.cores_per_node
    return ResourceDemand(
        cores=ranks,
        membw=ranks * 1.5e9,
        netbw=ranks * 0.05e9,
        llc_bytes=ranks * 2 * 1024 * 1024,
        frac_membw=0.25,
        frac_netbw=0.05,
        label=job.spec.app,
    )


class DisaggregationController:
    """Keeps the serverless pool in sync with batch-system state."""

    def __init__(
        self,
        scheduler: BatchScheduler,
        manager: ResourceManager,
        config: Optional[ControllerConfig] = None,
        demand_resolver: Optional[DemandResolver] = None,
    ):
        self.scheduler = scheduler
        self.manager = manager
        self.config = config or ControllerConfig()
        self.demand_resolver = demand_resolver or _default_demand
        # node -> why it is registered ("idle" or job_id).
        self._reason: dict[str, object] = {}
        # Statistics.
        self.idle_registrations = 0
        self.coloc_registrations = 0
        self.reclaims = 0

        scheduler.on_job_start.append(self._job_started)
        scheduler.on_job_end.append(self._job_ended)
        scheduler.reclaim_hook = self._reclaim
        if self.config.harvest_idle_nodes:
            self.harvest_idle()

    # -- idle-node harvesting ------------------------------------------------------
    def harvest_idle(self) -> int:
        """Register every currently idle node; returns how many."""
        if not self.config.harvest_idle_nodes:
            return 0
        count = 0
        for name in self.scheduler.free_node_names():
            if self.manager.is_registered(name):
                continue
            node = self.scheduler.cluster.node(name)
            cores = node.free_cores - self.config.reserve_cores
            memory = int(node.free_memory * self.config.memory_headroom)
            if cores < self.config.min_cores or memory < self.config.min_memory_bytes:
                continue
            self.manager.register_node(
                name, cores=cores, memory_bytes=memory,
                gpus=len(node.free_gpu_ids), mode=self.config.executor_mode,
            )
            self._reason[name] = "idle"
            self.idle_registrations += 1
            count += 1
        return count

    # -- batch hooks -------------------------------------------------------------------
    def _reclaim(self, node_names: list[str]) -> None:
        """Batch is about to claim these nodes: pull them from the pool."""
        for name in node_names:
            if self.manager.is_registered(name):
                self.manager.remove_node(name, immediate=self.config.immediate_reclaim)
                self._reason.pop(name, None)
                self.reclaims += 1

    def _job_started(self, job: Job) -> None:
        # Publish the job's demand so functions see the interference.
        demand = self.demand_resolver(job)
        if demand is not None:
            for name in job.node_names:
                self.manager.loads.add(name, f"job-{job.job_id}", demand)
        # Harvest the leftovers of consenting jobs.
        if not self.config.harvest_shared_jobs:
            return
        if not self.scheduler.sharing_consent(job):
            return
        for name in job.node_names:
            if self.manager.is_registered(name):
                continue
            node = self.scheduler.cluster.node(name)
            cores = node.free_cores - self.config.reserve_cores
            memory = int(node.free_memory * self.config.memory_headroom)
            if cores < self.config.min_cores or memory < self.config.min_memory_bytes:
                continue
            self.manager.register_node(
                name, cores=cores, memory_bytes=memory,
                gpus=len(node.free_gpu_ids), mode=self.config.executor_mode,
            )
            self._reason[name] = job.job_id
            self.coloc_registrations += 1

    def _job_ended(self, job: Job) -> None:
        demand = self.demand_resolver(job)
        if demand is not None:
            for name in job.node_names:
                try:
                    self.manager.loads.remove(name, f"job-{job.job_id}")
                except KeyError:
                    pass
        # Drop co-location registrations tied to this job; the nodes are
        # re-registered as idle right after (whole node now free).
        for name in job.node_names:
            if self._reason.get(name) == job.job_id:
                self.manager.remove_node(name, immediate=False)
                self._reason.pop(name, None)
        self.harvest_idle()

    # -- views ------------------------------------------------------------------------
    def registered_idle_nodes(self) -> list[str]:
        return sorted(n for n, why in self._reason.items() if why == "idle")

    def registered_coloc_nodes(self) -> list[str]:
        return sorted(n for n, why in self._reason.items() if why != "idle")
