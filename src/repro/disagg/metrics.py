"""System utilization accounting for the Fig. 10 comparison.

Utilization is *used core-time / allocated core-time*.  Three scenarios:

* **exclusive** — the batch job and the FaaS-like workload each occupy
  their own full nodes; unused cores on both allocations are waste;
* **partial (ideal billing)** — both run exclusively but are billed only
  for the cores they use: a billing fix, not a utilization fix (their
  nodes still cannot run anything else), modeled as the batch job's
  allocation being trimmed while the function workload still burns whole
  nodes;
* **co-located** — the FaaS workload runs on the batch job's leftover
  cores; one set of nodes serves both.

The paper reports up to ~52 % improvement for co-location (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ScenarioUtilization", "colocation_scenarios"]


@dataclass(frozen=True)
class ScenarioUtilization:
    """Core-time accounting of one placement scenario."""

    name: str
    used_core_time: float
    allocated_core_time: float

    def __post_init__(self):
        if self.allocated_core_time <= 0:
            raise ValueError("allocated core-time must be positive")
        if not 0 <= self.used_core_time <= self.allocated_core_time + 1e-9:
            raise ValueError("used core-time outside [0, allocated]")

    @property
    def utilization(self) -> float:
        return self.used_core_time / self.allocated_core_time

    def improvement_over(self, other: "ScenarioUtilization") -> float:
        """Relative utilization gain vs. ``other`` (0.52 = +52 %)."""
        return self.utilization / other.utilization - 1.0

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.utilization:.1%} utilization "
            f"(used {self.used_core_time:.1f} / allocated "
            f"{self.allocated_core_time:.1f} core-s)"
        )


def colocation_scenarios(
    node_cores: int,
    batch_nodes: int,
    batch_cores_per_node: int,
    batch_runtime_s: float,
    function_cores_per_node: int,
    function_busy_fraction: float = 1.0,
    batch_slowdown: float = 1.0,
) -> dict[str, ScenarioUtilization]:
    """Build the three Fig. 10 scenarios for one co-location experiment.

    ``function_busy_fraction`` is how much of the batch job's lifetime
    the leftover cores actually serve invocations (1.0 = back-to-back,
    the experiment's launch-as-soon-as-finished mode).
    """
    if not 0 < batch_cores_per_node <= node_cores:
        raise ValueError("batch cores outside node")
    if not 0 <= function_cores_per_node <= node_cores - batch_cores_per_node:
        raise ValueError("function cores exceed leftover")
    if not 0 <= function_busy_fraction <= 1:
        raise ValueError("busy fraction in [0, 1]")
    if batch_runtime_s <= 0 or batch_slowdown < 1:
        raise ValueError("invalid runtime/slowdown")

    batch_used = batch_nodes * batch_cores_per_node * batch_runtime_s
    fn_used = (
        batch_nodes * function_cores_per_node * batch_runtime_s * function_busy_fraction
    )
    coloc_time = batch_runtime_s * batch_slowdown
    scenarios = {
        # Both workloads on their own full-node allocations.
        "exclusive": ScenarioUtilization(
            name="exclusive",
            used_core_time=batch_used + fn_used,
            allocated_core_time=(
                batch_nodes * node_cores * batch_runtime_s          # batch alloc
                + batch_nodes * node_cores * batch_runtime_s * function_busy_fraction
            ),
        ),
        # Ideal billing: batch billed for used cores, functions still on
        # separate (whole) nodes.
        "partial": ScenarioUtilization(
            name="partial",
            used_core_time=batch_used + fn_used,
            allocated_core_time=(
                batch_nodes * batch_cores_per_node * batch_runtime_s
                + batch_nodes * node_cores * batch_runtime_s * function_busy_fraction
            ),
        ),
        # Software disaggregation: one set of nodes serves both.
        "colocated": ScenarioUtilization(
            name="colocated",
            used_core_time=batch_used + fn_used,
            allocated_core_time=batch_nodes * node_cores * coloc_time,
        ),
    }
    return scenarios
