"""Billing: core-hour accounting and opt-in co-location discounts.

Two headline numbers of Sec. V-C are pure billing arithmetic:
requesting 32 of 36 cores cuts the batch job's cost by ~11 %, and 9 of 12
cores by 25 % — "more than offsetting any impact of co-location".
Functions are billed per-use on independently allocated resources
(Sec. IV-E), so "a co-located FaaS-like application is essentially free"
from the system's perspective: every function core-hour comes out of
capacity that was already paid for and wasted.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["JobBill", "FunctionBill", "core_hour_discount"]


def core_hour_discount(requested_cores: int, node_cores: int) -> float:
    """Cost reduction from requesting only the cores actually used.

    ``1 - requested/node``: 32/36 -> ~0.111, 9/12 -> 0.25 (Sec. V-C).
    """
    if not 0 < requested_cores <= node_cores:
        raise ValueError("requested cores must be in (0, node_cores]")
    return 1.0 - requested_cores / node_cores


@dataclass(frozen=True)
class JobBill:
    """A batch job's bill under exclusive vs. shared accounting."""

    nodes: int
    node_cores: int
    requested_cores_per_node: int
    runtime_s: float
    slowdown: float = 1.0                 # co-location perturbation
    core_hour_price: float = 1.0          # currency per core-hour

    def __post_init__(self):
        if self.nodes < 1 or self.node_cores < 1:
            raise ValueError("need >= 1 node and core")
        if not 0 < self.requested_cores_per_node <= self.node_cores:
            raise ValueError("requested cores outside node")
        if self.runtime_s <= 0 or self.slowdown < 1.0:
            raise ValueError("invalid runtime/slowdown")

    @property
    def billed_runtime_s(self) -> float:
        return self.runtime_s * self.slowdown

    def exclusive_cost(self) -> float:
        """Classic billing: whole nodes for the (unperturbed) runtime."""
        hours = self.runtime_s / 3600.0
        return self.nodes * self.node_cores * hours * self.core_hour_price

    def shared_cost(self) -> float:
        """Opt-in billing: only requested cores, perturbed runtime."""
        hours = self.billed_runtime_s / 3600.0
        return self.nodes * self.requested_cores_per_node * hours * self.core_hour_price

    def saving_fraction(self) -> float:
        """Net saving of opting into sharing, slowdown included."""
        return 1.0 - self.shared_cost() / self.exclusive_cost()

    def sharing_worth_it(self) -> bool:
        """True when the discount beats the co-location overhead."""
        return self.saving_fraction() > 0.0

    # -- fair pricing under interference [Breslow'13, ref 40] ---------------------
    def fair_shared_cost(self) -> float:
        """Interference-adjusted bill: pay for exclusive-equivalent time.

        Traditional billing is unfair to co-located jobs: they pay for
        the wall-clock the *operator's* co-location inflated.  Fair
        pricing bills the runtime the job would have had exclusively
        (``billed_runtime / slowdown``), so the interference cost lands
        on the operator, who recovers it from the function tenants that
        caused it.
        """
        hours = self.runtime_s / 3600.0  # billed_runtime / slowdown == runtime
        return self.nodes * self.requested_cores_per_node * hours * self.core_hour_price

    def colocation_rebate(self) -> float:
        """What the operator refunds versus naive shared billing."""
        return self.shared_cost() - self.fair_shared_cost()

    def fair_saving_fraction(self) -> float:
        """User saving under fair pricing: pure discount, slowdown-free."""
        return 1.0 - self.fair_shared_cost() / self.exclusive_cost()


@dataclass(frozen=True)
class FunctionBill:
    """Per-invocation billing on independently allocated resources."""

    cores: int
    memory_bytes: int
    duration_s: float
    core_hour_price: float = 1.0
    gib_hour_price: float = 0.05
    gpu_hour_price: float = 10.0
    gpus: int = 0

    def __post_init__(self):
        if self.cores < 0 or self.memory_bytes < 0 or self.gpus < 0:
            raise ValueError("negative resources")
        if self.duration_s < 0:
            raise ValueError("negative duration")

    def cost(self) -> float:
        hours = self.duration_s / 3600.0
        gib = self.memory_bytes / 1024**3
        return hours * (
            self.cores * self.core_hour_price
            + gib * self.gib_hour_price
            + self.gpus * self.gpu_hour_price
        )
