"""Chaos experiment: invocation latency under increasing fault rates.

The fig07 workload (noop invocations against hot executors) replayed
while a :class:`~repro.faults.Injector` crashes nodes, revokes leases,
degrades the interconnect, plants stragglers, and evicts warm
containers.  The client runs under a :class:`~repro.faults.RetryPolicy`
with backoff, so faults cost latency rather than failures; the report
shows, per fault rate, the completion ratio, latency percentiles, and
the recovery overhead (retries, mean recovery time) read back from the
``repro_faults_*`` telemetry metrics.

Expected shape: completion stays >= 95 % across the default sweep —
the point of the paper's ephemeral-resource design is that reclamation
is routine, not fatal — while tail latency grows with the fault rate as
more invocations pay redirect + backoff.

Fully deterministic: the same ``seed`` (and plan) replays the identical
fault schedule, victims, and recovery trace — asserted byte-for-byte by
``tests/faults/test_determinism.py``.

Sweep protocol: :func:`scenario` is a pure module-level function of
``(params, seed)`` so scenarios cross the process-pool boundary of
:func:`repro.sweep.run_sweep`; :func:`plan_scenarios` /
:func:`assemble` are registered as the ``chaos`` sweep and
:func:`run` is the serial shim over them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

import numpy as np

from ..analysis.tables import render_table
from ..api import ClusterSpec, Platform
from ..containers import Image
from ..faults import FaultPlan, RecoveryOutcome, RetryPolicy
from ..interference import ResourceDemand
from ..memservice import DurableMemoryConfig, RemotePager
from ..rfaas.errors import DataLossError, MemoryServiceUnavailable
from ..telemetry import NULL_TELEMETRY, telemetry_of
from .base import ScenarioSpec, Sweep, SweepPlan, register_sweep, result_to_json

__all__ = [
    "ChaosPoint",
    "ChaosResult",
    "default_plan",
    "scenario",
    "plan_scenarios",
    "assemble",
    "run",
    "format_report",
    "SWEEP",
]

MiB = 1024**2
GiB = 1024**3

#: Fault events per simulated minute, the sweep's x-axis.
DEFAULT_RATES = (0.0, 4.0, 8.0, 16.0)

#: Client policy used by the sweep: a deeper budget than the default
#: plus a short backoff, so storms do not exhaust attempts instantly.
SWEEP_POLICY = RetryPolicy(
    max_attempts=6, backoff_base_s=0.05, backoff_multiplier=2.0, backoff_max_s=1.0,
)


@dataclass(frozen=True)
class ChaosPoint:
    """Outcome of one scenario (one fault rate, or one explicit plan)."""

    label: str
    faults_injected: int
    invocations: int
    completed: int
    p50_ms: float
    p95_ms: float
    retries: int
    recovered: int
    gave_up: int
    rejected: int
    timed_out: int
    mean_recovery_ms: float

    @property
    def completion_ratio(self) -> float:
        return self.completed / self.invocations if self.invocations else 0.0


@dataclass
class ChaosResult:
    points: list[ChaosPoint] = field(default_factory=list)
    window_s: float = 0.0
    seed: int = 0

    def to_dict(self) -> dict:
        return {
            "window_s": self.window_s,
            "seed": self.seed,
            "points": [asdict(p) for p in self.points],
        }

    def to_json(self) -> str:
        return result_to_json(self)

    def format_report(self) -> str:
        rows = []
        for p in self.points:
            rows.append([
                p.label, p.faults_injected, p.invocations,
                f"{p.completion_ratio * 100:.1f}%",
                f"{p.p50_ms:.3f}", f"{p.p95_ms:.3f}",
                p.retries, p.recovered, p.gave_up + p.rejected + p.timed_out,
                f"{p.mean_recovery_ms:.3f}",
            ])
        table = render_table(
            ["plan", "faults", "invocations", "completed", "p50 (ms)", "p95 (ms)",
             "retries", "recovered", "failed", "recovery (ms)"],
            rows,
            title=f"Chaos sweep — noop latency under faults ({self.window_s:g}s window)",
        )
        return table + (
            "\nReclamation is routine, not fatal: retries keep completion high"
            " while faults tax the tail."
        )


def default_plan(rate: float, window_s: float, name: str = "") -> FaultPlan:
    """A deterministic plan with ``rate`` faults per simulated minute.

    Events cycle through the whole taxonomy and are spaced evenly
    across the window; crashes heal before the next one lands, so the
    pool never collapses entirely (reclamation is routine, not an
    outage).
    """
    plan = FaultPlan(name=name or f"rate-{rate:g}")
    count = int(round(rate * window_s / 60.0))
    for i in range(count):
        at = (i + 1) * window_s / (count + 1)
        kind = i % 5
        if kind == 0:
            plan.lease_storm(at_s=at, count=2)
        elif kind == 1:
            plan.node_crash(at_s=at, duration_s=min(3.0, window_s / (2 * count)),
                            immediate=True)
        elif kind == 2:
            plan.network_degrade(at_s=at, duration_s=1.0, latency_factor=5.0,
                                 bandwidth_factor=0.5, drop_rate=0.02)
        elif kind == 3:
            plan.straggler(at_s=at, duration_s=2.0, multiplier=20.0)
        else:
            plan.warmpool_pressure(at_s=at, fraction=0.5)
    return plan


def _metric_sum(registry, name: str) -> float:
    return sum(m.value for m in registry if m.name == name)


def _invocation_stream(env, client, outcomes, window_s: float,
                       payload_bytes: int):
    """Closed-loop noop invocations until the window ends.

    Module-level (not a ``scenario``-local closure) so scenario
    functions stay picklable end to end; all state arrives as
    parameters.
    """
    while env.now < window_s:
        detailed = yield client.invoke_detailed("noop", payload_bytes=payload_bytes)
        outcomes.append(detailed)


def _paging_stream(env, pager, window_s: float):
    """A background remote-paging loop riding the same fault storm."""
    page = 0
    while env.now < window_s:
        yield env.timeout(0.05)
        try:
            yield pager.touch(page % pager.total_pages,
                              dirty=(page % 2 == 0))
        except (DataLossError, MemoryServiceUnavailable):
            pass  # durability outcomes are the memdurability sweep's job
        page += 1


def scenario(params: dict, seed: int) -> dict:
    """One chaos scenario as a pure function of ``(params, seed)``.

    ``params``: ``plan`` (a :class:`FaultPlan`), ``window_s``,
    ``runtime_s``, ``payload_bytes``, ``streams``, ``memservice``.
    Returns the :class:`ChaosPoint` as a plain dict, ready to cross a
    process boundary.
    """
    plan: FaultPlan = params["plan"]
    window_s: float = params["window_s"]
    runtime_s: float = params["runtime_s"]
    payload_bytes: int = params["payload_bytes"]
    streams: int = params["streams"]
    memservice: bool = params["memservice"]
    # Join an active TelemetryCollector (the CLI's --trace/--spans) when
    # there is one; otherwise pin a private scope so the recovery
    # metrics in the report are collected either way.
    collector_active = telemetry_of(None) is not NULL_TELEMETRY
    durable = None
    if memservice:
        # Small k=2 buffer across the executor nodes: the same crash
        # storm then also destroys chunk replicas, exercising migration,
        # repair, and read failover alongside invocation recovery.
        durable = DurableMemoryConfig(
            size_bytes=24 * MiB, chunk_bytes=8 * MiB, replication=2,
            repair_interval_s=0.5, hosts=("n0001", "n0002", "n0003"),
        )
    platform = Platform.build(ClusterSpec(nodes=4), seed=seed,
                              telemetry=(None if collector_active else True),
                              faults=plan, durable_memory=durable)
    env = platform.env
    for i in range(1, 4):
        platform.register_node(f"n{i:04d}", cores=4, memory_bytes=8 * GiB)
    image = Image("chaos-noop", size_bytes=50 * MiB)
    platform.functions.register(
        "noop", image, runtime_s=runtime_s,
        demand=ResourceDemand(cores=1, membw=0.0, frac_membw=0.0),
        output_bytes=1,
    )
    client = platform.client("n0000", retry_policy=SWEEP_POLICY)
    outcomes = []

    for _ in range(streams):
        platform.process(_invocation_stream(env, client, outcomes, window_s,
                                            payload_bytes))
    if durable is not None:
        memory_client = platform.memory_client("n0000", user="chaos-pager")
        pager = RemotePager(env, memory_client, page_bytes=2 * MiB,
                            resident_pages=4)
        platform.process(_paging_stream(env, pager, window_s))
    platform.run_until(window_s + 30.0)
    if platform.durable_memory is not None:
        platform.durable_memory.stop()
    platform.run()

    latencies = [d.elapsed_s for d in outcomes if d.ok]
    p50 = float(np.median(latencies)) if latencies else float("nan")
    p95 = float(np.percentile(latencies, 95)) if latencies else float("nan")
    registry = platform.telemetry.metrics
    recovery_hist = registry.get("repro_faults_recovery_seconds")
    return asdict(ChaosPoint(
        label=plan.name,
        faults_injected=int(_metric_sum(registry, "repro_faults_injected_total")),
        invocations=len(outcomes),
        completed=sum(1 for d in outcomes if d.ok),
        p50_ms=p50 * 1e3,
        p95_ms=p95 * 1e3,
        retries=int(_metric_sum(registry, "repro_faults_retries_total")),
        recovered=sum(1 for d in outcomes if d.outcome is RecoveryOutcome.RECOVERED),
        gave_up=sum(1 for d in outcomes if d.outcome is RecoveryOutcome.GAVE_UP),
        rejected=sum(1 for d in outcomes if d.outcome is RecoveryOutcome.REJECTED),
        timed_out=sum(1 for d in outcomes if d.outcome is RecoveryOutcome.TIMED_OUT),
        mean_recovery_ms=(recovery_hist.mean() * 1e3 if recovery_hist is not None
                          and recovery_hist.count else 0.0),
    ))


def plan_scenarios(
    rates=DEFAULT_RATES,
    window_s: float = 30.0,
    seed: int = 0,
    runtime_s: float = 0.02,
    payload_bytes: int = 1024,
    streams: int = 2,
    plan: Optional[FaultPlan] = None,
    memservice: bool = False,
) -> SweepPlan:
    """Fix the canonical scenario order (and each scenario's seed)."""
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    plans = ([plan] if plan is not None
             else [default_plan(rate, window_s) for rate in rates])
    scenarios = tuple(
        ScenarioSpec(
            fn=scenario,
            params={
                "plan": scenario_plan,
                "window_s": window_s,
                "runtime_s": runtime_s,
                "payload_bytes": payload_bytes,
                "streams": streams,
                "memservice": memservice,
            },
            seed=seed,
            label=scenario_plan.name,
        )
        for scenario_plan in plans
    )
    return SweepPlan(scenarios=scenarios,
                     meta={"window_s": window_s, "seed": seed})


def assemble(points: list[dict], meta: dict) -> ChaosResult:
    """Rebuild the typed result from point dicts, in plan order."""
    result = ChaosResult(window_s=meta["window_s"], seed=meta["seed"])
    result.points = [ChaosPoint(**point) for point in points]
    return result


def run(
    rates=DEFAULT_RATES,
    window_s: float = 30.0,
    seed: int = 0,
    runtime_s: float = 0.02,
    payload_bytes: int = 1024,
    streams: int = 2,
    plan: FaultPlan = None,
    memservice: bool = False,
) -> ChaosResult:
    """Serial shim over the sweep protocol; pass ``plan`` for one plan.

    ``memservice=True`` co-runs a remote-paging stream on a replicated
    (k=2) memory service, so the same storms also hit durable-memory
    chunks (``repro chaos --memservice``).  For multi-core execution
    use :func:`repro.sweep.run_sweep` (``repro chaos --jobs N``).
    """
    return SWEEP.run_serial(
        rates=rates, window_s=window_s, seed=seed, runtime_s=runtime_s,
        payload_bytes=payload_bytes, streams=streams, plan=plan,
        memservice=memservice,
    )


def format_report(result: ChaosResult) -> str:
    return result.format_report()


SWEEP = register_sweep(Sweep(
    name="chaos",
    description="invocation latency under injected faults",
    plan=plan_scenarios,
    assemble=assemble,
    result_type=ChaosResult,
))
