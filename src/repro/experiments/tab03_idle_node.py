"""Experiment Table III: idle-node throughput with co-located functions.

Serial NAS benchmarks run as rFaaS functions on one idle 36-core Daint
node; the metric is node throughput relative to a single executor as the
co-located function count grows to 32.

Paper reference (Table III):

    app / fns   1    2     4    8    12    16    24     32
    BT, W       1  1.95  3.8  6.9   9.5  11.7  17.37  23.3
    CG, A       1  1.85  2.8  4.8   5.8   6.0   8.5   11.4
    EP, W       1  2.0   3.78 6.8  10.2  13.6  20.4   27.2
    LU, W       1  1.9   3.76 6.7   9.96  -    19.7    -

Expected shape: EP near-linear (~85 % efficiency at 32), BT/LU at
70–80 %, CG saturating one socket's memory bandwidth near 6x and only
recovering when instances spill onto the second socket.  The paper also
reports the rFaaS execution overhead: ~13 % for the shortest benchmark
(CG, 0.6 s) and <1 % elsewhere — reproduced here from the invocation
overhead model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import render_table
from ..cluster import DAINT_MC, NodeSpec
from ..interference import InterferenceModel
from ..network import UGNI
from ..workloads import nas_model

__all__ = ["Tab03Result", "run", "format_report", "rfaas_overhead_fraction"]

DEFAULT_COUNTS = (1, 2, 4, 8, 12, 16, 24, 32)
DEFAULT_BENCHMARKS = ("bt.W", "cg.A", "ep.W", "lu.W")

#: Paper-measured relative throughputs, for side-by-side reporting.
PAPER_TABLE3 = {
    "bt.W": {1: 1, 2: 1.95, 4: 3.8, 8: 6.9, 12: 9.5, 16: 11.7, 24: 17.37, 32: 23.3},
    "cg.A": {1: 1, 2: 1.85, 4: 2.8, 8: 4.8, 12: 5.8, 16: 6.0, 24: 8.5, 32: 11.4},
    "ep.W": {1: 1, 2: 2.0, 4: 3.78, 8: 6.8, 12: 10.2, 16: 13.6, 24: 20.4, 32: 27.2},
    "lu.W": {1: 1, 2: 1.9, 4: 3.76, 8: 6.7, 12: 9.96, 24: 19.7},
}


def rfaas_overhead_fraction(app) -> float:
    """Per-invocation rFaaS overhead relative to the function runtime.

    Two components: (a) fixed per-invocation costs — warm invocation
    round trip, dispatch, container attach, payload staging (~5 ms) —
    amortized over the runtime; (b) coupling with the executor and
    container machinery, which costs bandwidth-bound codes
    disproportionately (the polling executor and container I/O add memory
    traffic).  Calibrated to the paper's observation: ~13 % for the
    0.6-second, heavily memory-bound CG; below ~2 % for BT/LU/EP.
    """
    if app.runtime_s <= 0:
        raise ValueError("runtime must be positive")
    fixed_s = UGNI.params.round_trip(64 * 1024, 64 * 1024) + 0.005
    membw_coupling = 0.15 * app.frac_membw**2
    return fixed_s / app.runtime_s + membw_coupling


@dataclass
class Tab03Result:
    counts: tuple[int, ...]
    throughput: dict[str, dict[int, float]] = field(default_factory=dict)
    overhead: dict[str, float] = field(default_factory=dict)


def run(
    benchmarks=DEFAULT_BENCHMARKS,
    counts=DEFAULT_COUNTS,
    spec: NodeSpec = DAINT_MC,
    model: InterferenceModel = None,
) -> Tab03Result:
    model = model or InterferenceModel()
    result = Tab03Result(counts=tuple(counts))
    for key in benchmarks:
        app = nas_model(key)
        demand = app.demand(1)
        result.throughput[key] = {
            n: model.relative_throughput(spec, demand, n) for n in counts
        }
        result.overhead[key] = rfaas_overhead_fraction(app)
    return result


def run_platform(
    benchmark: str = "cg.A",
    counts=(1, 4, 16),
    window_s: float = 60.0,
    seed: int = 0,
) -> dict[int, float]:
    """Table III measured through the full platform stack.

    Registers one idle Daint node, runs ``count`` concurrent invocation
    streams of the NAS function for ``window_s`` simulated seconds, and
    returns throughput relative to one stream.  Cross-validates that the
    executor/lease/load-registry wiring reproduces what the interference
    model predicts analytically.
    """
    from ..api import ClusterSpec, Platform
    from ..containers import Image
    from ..network import IBVERBS

    app = nas_model(benchmark)
    out: dict[int, float] = {}
    for count in counts:
        platform = Platform.build(
            ClusterSpec(nodes=2, provider=IBVERBS, jitter=0.0), seed=seed
        )
        env = platform.env
        registered = platform.register_node("n0001", cores=max(counts),
                                            memory_bytes=32 * 1024**3)
        image = Image("nas", size_bytes=100 * 1024**2)
        platform.functions.register(benchmark, image, runtime_s=app.runtime_s,
                                    demand=app.demand(1))
        registered.executor.prewarm(image)
        completions = [0]

        def stream():
            client = platform.client("n0000")
            while env.now < window_s:
                result = yield client.invoke(benchmark, payload_bytes=1024)
                if result.ok:
                    completions[0] += 1

        for _ in range(count):
            platform.process(stream())
        platform.run_until(window_s)
        out[count] = completions[0] / window_s
    per_stream_base = out[counts[0]] / counts[0]
    return {n: rate / per_stream_base for n, rate in out.items()}


def format_report(result: Tab03Result) -> str:
    headers = ["app"] + [str(n) for n in result.counts] + ["rFaaS ovh"]
    rows = []
    for key, by_count in result.throughput.items():
        rows.append(
            [key] + [by_count[n] for n in result.counts]
            + [f"{result.overhead[key] * 100:.1f}%"]
        )
        paper = PAPER_TABLE3.get(key)
        if paper:
            rows.append(
                [f"  (paper)"] + [paper.get(n, float("nan")) for n in result.counts] + [""]
            )
    table = render_table(headers, rows, title="Table III — relative idle-node throughput")
    return table + (
        "\nPaper: 70-80% efficiency except CG; rFaaS overhead ~13% for the"
        " shortest CG, <1% otherwise."
    )
