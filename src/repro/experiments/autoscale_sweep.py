"""Autoscale experiment: predictive vs reactive warm pools under load.

The capacity control plane (:mod:`repro.capacity`) governs every
invocation: forecast → admission (token buckets, bounded queue) →
harvested-pool placement → cloud-burst overflow.  This sweep replays the
same deterministic open-loop arrival schedule at increasing load
multipliers, twice per load — once with the warm-pool autoscaler
*reactive* (pools grow on miss, the seed system's behaviour) and once
*predictive* (pools resized ahead of the forecast) — and reports, per
scenario: p50/p99 latency, warm-start rate, admission-reject rate, burst
fraction, and the accumulated cloud-burst bill.

A node-crash plan runs by default (pass ``crash=False`` to disable): mid-
window crashes wipe two executor nodes' pools, the nodes heal and
re-register empty, and the difference between the modes becomes visible —
the predictive loop re-provisions the recovered nodes before traffic
lands on them, the reactive baseline pays the cold starts in-band.

Conservation invariant (asserted here, required by the ISSUE): every
arrival completes on HPC, completes on the cloud with its cost
accounted, or is explicitly rejected — nothing is silently dropped.

Fully deterministic: same seed ⇒ identical JSON (asserted across fresh
interpreters by ``tests/capacity/test_autoscale_determinism.py``).

Sweep protocol: :func:`scenario` is a pure module-level function of
``(params, seed)``; :func:`plan_scenarios` / :func:`assemble` are
registered as the ``autoscale`` sweep and :func:`run` is the serial
shim over them (``repro autoscale --jobs N`` fans scenarios out).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

import numpy as np

from ..analysis.tables import render_table
from ..api import ClusterSpec, Platform
from ..capacity import (
    AdmissionConfig,
    AutoscalerConfig,
    CapacityConfig,
    TenantQuota,
)
from ..containers import Image
from ..faults import FaultPlan
from ..interference import ResourceDemand
from ..telemetry import NULL_TELEMETRY, telemetry_of
from .base import ScenarioSpec, Sweep, SweepPlan, register_sweep, result_to_json

__all__ = [
    "AutoscalePoint",
    "AutoscaleResult",
    "default_crash_plan",
    "scenario",
    "plan_scenarios",
    "assemble",
    "run",
    "format_report",
    "SWEEP",
]

MiB = 1024**2
GiB = 1024**3

#: Load multipliers swept by default (1x = DEFAULT_RATE arrivals/s).
DEFAULT_LOADS = (1.0, 4.0, 16.0)

#: Aggregate arrival rate at load 1.0, in invocations per second.
DEFAULT_RATE = 4.0

#: Executor nodes registered with the harvested pool (n0000 hosts clients).
EXECUTORS = ("n0001", "n0002", "n0003", "n0004")


@dataclass(frozen=True)
class AutoscalePoint:
    """Outcome of one (load multiplier, autoscaler mode) scenario."""

    load: float
    mode: str                     # "reactive" | "predictive"
    invocations: int
    completed: int                # served on harvested HPC capacity
    bursts: int                   # served on the cloud overflow
    rejected: int                 # explicit AdmissionRejected backpressure
    warm_start_rate: float        # HPC completions that skipped the cold start
    cold_starts: int              # cold starts paid by invocations (not prewarm)
    prewarms: int                 # containers started ahead of demand
    p50_ms: float
    p99_ms: float
    mean_queue_wait_ms: float
    burst_cost: float
    faults_injected: int

    @property
    def reject_rate(self) -> float:
        return self.rejected / self.invocations if self.invocations else 0.0

    @property
    def burst_fraction(self) -> float:
        return self.bursts / self.invocations if self.invocations else 0.0


@dataclass
class AutoscaleResult:
    points: list[AutoscalePoint] = field(default_factory=list)
    window_s: float = 0.0
    seed: int = 0

    def to_dict(self) -> dict:
        return {
            "window_s": self.window_s,
            "seed": self.seed,
            "points": [asdict(p) for p in self.points],
        }

    def to_json(self) -> str:
        return result_to_json(self)

    def format_report(self) -> str:
        rows = []
        for p in self.points:
            rows.append([
                f"{p.load:g}x", p.mode, p.invocations,
                p.completed, p.bursts, p.rejected,
                f"{p.warm_start_rate * 100:.1f}%",
                p.prewarms,
                f"{p.p50_ms:.3f}", f"{p.p99_ms:.3f}",
                f"{p.burst_fraction * 100:.1f}%",
                f"{p.burst_cost:.6f}",
            ])
        table = render_table(
            ["load", "mode", "arrivals", "hpc", "cloud", "rejected", "warm",
             "prewarms", "p50 (ms)", "p99 (ms)", "burst", "burst cost"],
            rows,
            title=(f"Autoscale sweep — predictive vs reactive warm pools "
                   f"({self.window_s:g}s window)"),
        )
        return table + (
            "\nEvery arrival is accounted for: served on harvested HPC cores,"
            " overflowed to the cloud (billed), or explicitly rejected."
        )


def default_crash_plan(window_s: float) -> FaultPlan:
    """A crash storm: every executor node crashes once, staggered.

    Each crash wipes the node's warm pool and attached containers; the
    node heals and re-registers *empty*, which is exactly where
    predictive re-provisioning pays off — the reactive baseline pays the
    recovered nodes' cold starts in-band on the next spillover.
    """
    heal = max(1.0, window_s / 10.0)
    plan = FaultPlan(name="autoscale-crash")
    for i, node in enumerate(EXECUTORS):
        at = window_s * (0.25 + 0.15 * i)
        plan.node_crash(at_s=at, node=node, duration_s=heal, immediate=True)
    return plan


def _capacity_config(predictive: bool) -> CapacityConfig:
    return CapacityConfig(
        autoscaler=AutoscalerConfig(predictive=predictive),
        # Quotas sized so backpressure engages only at the extreme end of
        # the default sweep (per-tenant rate passes 3/s at 16x load).
        admission=AdmissionConfig(
            max_queue_depth=16,
            max_queue_wait_s=0.5,
            default_quota=TenantQuota(rate_per_s=3.0, burst=6.0),
        ),
    )


def _govern_one(plane, client, tenant: str, function: str,
                payload_bytes: int, results):
    """One governed invocation (module-level so scenarios stay picklable)."""
    result = yield plane.invoke(client, function,
                                payload_bytes=payload_bytes, tenant=tenant)
    results.append(result)


def _arrival_source(env, plane, clients, names, results, load: float,
                    base_rate_per_s: float, window_s: float,
                    payload_bytes: int):
    """Deterministic open-loop arrivals: evenly spaced, tenants
    round-robin (each pinned to one function), independent of how long
    each invocation takes."""
    rate = base_rate_per_s * load
    count = int(round(rate * window_s))
    gap = 1.0 / rate
    for i in range(count):
        client = clients[i % len(clients)]
        function = names[(i % len(clients)) % len(names)]
        env.process(
            _govern_one(plane, client, client.name, function, payload_bytes,
                        results),
            name=f"arrival-{i}",
        )
        yield env.timeout(gap)


def scenario(params: dict, seed: int) -> dict:
    """One autoscale scenario as a pure function of ``(params, seed)``.

    ``params``: ``load``, ``predictive``, ``window_s``, ``runtime_s``,
    ``payload_bytes``, ``tenants``, ``base_rate_per_s``, ``plan``
    (a :class:`FaultPlan` or None).  Returns the
    :class:`AutoscalePoint` as a plain dict.
    """
    load: float = params["load"]
    predictive: bool = params["predictive"]
    window_s: float = params["window_s"]
    runtime_s: float = params["runtime_s"]
    payload_bytes: int = params["payload_bytes"]
    tenants: int = params["tenants"]
    base_rate_per_s: float = params["base_rate_per_s"]
    plan: Optional[FaultPlan] = params["plan"]
    # Join an active TelemetryCollector (the CLI's --trace/--spans) when
    # there is one; otherwise pin a private scope for the metrics below.
    collector_active = telemetry_of(None) is not NULL_TELEMETRY
    platform = Platform.build(
        ClusterSpec(nodes=5, jitter=0.0), seed=seed,
        telemetry=(None if collector_active else True),
        faults=plan,
        capacity=_capacity_config(predictive),
    )
    env = platform.env
    # One executor core per node: the harvested pool (4 slots) is scarce
    # relative to the tenant count, so lease contention — and with it the
    # burst fraction — grows with the load multiplier.
    for node in EXECUTORS:
        platform.register_node(node, cores=1, memory_bytes=8 * GiB)
    # Several functions with distinct images: warmth is per (node, image),
    # so spillover keeps re-exposing cold starts instead of saturating
    # after one touch per node.
    names = []
    for f in range(3):
        image = Image(f"autoscale-img{f}", size_bytes=150 * MiB,
                      runtime_memory_bytes=256 * MiB)
        name = f"fn{f}"
        platform.functions.register(
            name, image, runtime_s=runtime_s,
            demand=ResourceDemand(cores=1, membw=0.0, frac_membw=0.0),
            output_bytes=1,
        )
        names.append(name)
    plane = platform.capacity
    clients = [platform.client("n0000", name=f"tenant-{i:02d}")
               for i in range(tenants)]
    results = []

    platform.process(_arrival_source(env, plane, clients, names, results,
                                     load, base_rate_per_s, window_s,
                                     payload_bytes))
    # Let the window play out (plus slack for stragglers), then stop the
    # autoscaler's control loop so the event queue can fully drain.
    platform.run_until(window_s + 5.0)
    plane.stop()
    platform.run()
    for client in clients:
        client.close()

    stats = plane.stats()
    assert stats["completed"] + stats["rejected"] + stats["bursts"] \
        == stats["invocations"] == len(results), "an invocation went missing"

    hpc = [r for r in results if r.route == "hpc"]
    served = [r for r in results if r.route in ("hpc", "cloud")]
    warm = sum(1 for r in hpc if r.startup_kind != "cold")
    latencies = [r.latency_s for r in served]
    waits = [r.queue_wait_s for r in served]
    invocation_colds = sum(1 for r in hpc if r.startup_kind == "cold")
    registry = platform.telemetry.metrics
    faults = sum(m.value for m in registry if m.name == "repro_faults_injected_total")
    return asdict(AutoscalePoint(
        load=load,
        mode="predictive" if predictive else "reactive",
        invocations=len(results),
        completed=len(hpc),
        bursts=sum(1 for r in results if r.route == "cloud"),
        rejected=sum(1 for r in results if r.route == "rejected"),
        warm_start_rate=round(warm / len(hpc), 6) if hpc else 0.0,
        cold_starts=invocation_colds,
        prewarms=plane.autoscaler.prewarms,
        p50_ms=round(float(np.median(latencies)) * 1e3, 6) if latencies else 0.0,
        p99_ms=round(float(np.percentile(latencies, 99)) * 1e3, 6) if latencies else 0.0,
        mean_queue_wait_ms=round(float(np.mean(waits)) * 1e3, 6) if waits else 0.0,
        burst_cost=round(stats["burst_cost"], 9),
        faults_injected=int(faults),
    ))


def plan_scenarios(
    loads=DEFAULT_LOADS,
    window_s: float = 20.0,
    seed: int = 0,
    runtime_s: float = 0.15,
    payload_bytes: int = 1024,
    tenants: int = 10,
    base_rate_per_s: float = DEFAULT_RATE,
    crash: bool = True,
    plan: Optional[FaultPlan] = None,
) -> SweepPlan:
    """Fix the canonical scenario order: each load reactive, then
    predictive, all replaying the same schedule (and crash storm)."""
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    if tenants < 1:
        raise ValueError("need at least one tenant")
    if plan is None and crash:
        plan = default_crash_plan(window_s)
    scenarios = []
    for load in loads:
        if load <= 0:
            raise ValueError("load multipliers must be positive")
        for predictive in (False, True):
            scenarios.append(ScenarioSpec(
                fn=scenario,
                params={
                    "load": load,
                    "predictive": predictive,
                    "window_s": window_s,
                    "runtime_s": runtime_s,
                    "payload_bytes": payload_bytes,
                    "tenants": tenants,
                    "base_rate_per_s": base_rate_per_s,
                    "plan": plan,
                },
                seed=seed,
                label=f"{load:g}x-{'predictive' if predictive else 'reactive'}",
            ))
    return SweepPlan(scenarios=tuple(scenarios),
                     meta={"window_s": window_s, "seed": seed})


def assemble(points: list[dict], meta: dict) -> AutoscaleResult:
    """Rebuild the typed result from point dicts, in plan order."""
    result = AutoscaleResult(window_s=meta["window_s"], seed=meta["seed"])
    result.points = [AutoscalePoint(**point) for point in points]
    return result


def run(
    loads=DEFAULT_LOADS,
    window_s: float = 20.0,
    seed: int = 0,
    runtime_s: float = 0.15,
    payload_bytes: int = 1024,
    tenants: int = 10,
    base_rate_per_s: float = DEFAULT_RATE,
    crash: bool = True,
    plan: Optional[FaultPlan] = None,
) -> AutoscaleResult:
    """Serial shim over the sweep protocol.

    ``crash=True`` (default) replays :func:`default_crash_plan` in every
    scenario; pass an explicit ``plan`` to override it, or ``crash=False``
    for a fault-free sweep.  For multi-core execution use
    :func:`repro.sweep.run_sweep` (``repro autoscale --jobs N``).
    """
    return SWEEP.run_serial(
        loads=loads, window_s=window_s, seed=seed, runtime_s=runtime_s,
        payload_bytes=payload_bytes, tenants=tenants,
        base_rate_per_s=base_rate_per_s, crash=crash, plan=plan,
    )


def format_report(result: AutoscaleResult) -> str:
    return result.format_report()


SWEEP = register_sweep(Sweep(
    name="autoscale",
    description="predictive vs reactive warm pools under load",
    plan=plan_scenarios,
    assemble=assemble,
    result_type=AutoscaleResult,
))
