"""Experiment harness: one module per paper table/figure.

Each module exposes ``run(...) -> result`` and ``format_report(result)``;
the benchmark suite (``benchmarks/``) executes them and prints the same
rows/series the paper reports.  See DESIGN.md for the experiment index.

The sweep-shaped experiments additionally implement the
:mod:`repro.experiments.base` protocol — ``plan_scenarios(...)`` /
``scenario(params, seed)`` / ``assemble(points, meta)`` — and register
themselves so :func:`repro.sweep.run_sweep` can fan their scenarios out
across a process pool (``repro <sweep> --jobs N``).
"""

from . import (
    base,
    autoscale_sweep,
    chaos_sweep,
    fig01_utilization,
    fig07_latency,
    fig08_storage,
    fig09_cpu_sharing,
    fig10_utilization,
    fig11_memory_sharing,
    fig12_gpu_sharing,
    fig13_offloading,
    gpu_scaling_sweep,
    loadstorm_sweep,
    manager_failover_sweep,
    memdurability_sweep,
    tab03_idle_node,
)

__all__ = [
    "base",
    "autoscale_sweep",
    "chaos_sweep",
    "gpu_scaling_sweep",
    "loadstorm_sweep",
    "manager_failover_sweep",
    "memdurability_sweep",
    "fig01_utilization",
    "fig07_latency",
    "fig08_storage",
    "fig09_cpu_sharing",
    "fig10_utilization",
    "fig11_memory_sharing",
    "fig12_gpu_sharing",
    "fig13_offloading",
    "tab03_idle_node",
]
