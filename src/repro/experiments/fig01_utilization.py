"""Experiment Fig. 1: cluster utilization and idle-period structure.

Reproduces the three panels of the paper's motivation figure on a
synthetic Piz-Daint-like trace:

* 1a — allocated/idle node counts sampled on a two-minute interval;
* 1b — memory utilization (used vs. allocated by batch jobs);
* 1c — distribution of idle-period durations (estimated from sampling,
  exactly as the paper does, plus the exact event-driven ground truth).

Paper reference points: median 252 idle of 7517 nodes (~3.4 %), median
idle period 5–6.5 minutes, 70–80 % of idle periods under 10 minutes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.tables import render_table
from ..analysis.utilization import (
    IdleStats,
    idle_duration_stats,
    sampled_idle_durations,
    utilization_summary,
)
from ..cluster import Cluster, DAINT_MC
from ..sim import Environment
from ..slurm import (
    BatchScheduler,
    NodeStateTracker,
    UtilizationSampler,
    WorkloadConfig,
    WorkloadGenerator,
    drive_workload,
)

__all__ = ["Fig01Result", "run", "format_report"]


@dataclass
class Fig01Result:
    nodes: int
    hours: float
    summary: dict                       # Fig. 1a aggregates
    memory_used_fraction_mean: float    # Fig. 1b
    memory_allocated_fraction_mean: float
    sampled_idle: IdleStats             # Fig. 1c (paper methodology)
    exact_idle: IdleStats               # Fig. 1c (ground truth)
    completed_jobs: int


def run(
    nodes: int = 64,
    hours: float = 12.0,
    seed: int = 0,
    target_utilization: float = 0.96,
    sample_interval_s: float = 120.0,
) -> Fig01Result:
    """Simulate the trace and compute the Fig. 1 statistics."""
    env = Environment()
    cluster = Cluster()
    cluster.add_nodes("n", nodes, DAINT_MC)
    scheduler = BatchScheduler(env, cluster)
    config = WorkloadConfig(
        target_utilization=target_utilization,
        runtime_median_s=420.0,
        max_runtime_s=2 * 3600.0,
        max_nodes=max(2, nodes // 4),
    )
    generator = WorkloadGenerator(np.random.default_rng(seed), nodes, config)
    sampler = UtilizationSampler(env, scheduler, interval=sample_interval_s)
    tracker = NodeStateTracker(env, scheduler)
    drive_workload(env, scheduler, generator, duration=hours * 3600.0)
    env.run(until=hours * 3600.0)

    # Discard the fill-up warmup: first 10% of the horizon.
    warmup = hours * 360.0
    idle_series = sampler.idle_nodes
    steady = [
        (t, v) for t, v in zip(idle_series.times, idle_series.values) if t >= warmup
    ]
    from ..sim.trace import TimeSeries

    steady_idle = TimeSeries("idle-steady")
    for t, v in steady:
        steady_idle.record(t, v)

    sampled = []
    for name, series in tracker.series.items():
        polled = series.sample(warmup, hours * 3600.0, sample_interval_s)
        sampled.extend(sampled_idle_durations(polled, sample_interval_s))
    exact = [d for d in tracker.all_idle_durations() if d > 0]

    mem_used = sampler.used_memory_fraction
    mem_used_steady = np.mean([v for t, v in zip(mem_used.times, mem_used.values) if t >= warmup])
    alloc = sampler.allocated_node_fraction
    alloc_steady = np.mean([v for t, v in zip(alloc.times, alloc.values) if t >= warmup])

    return Fig01Result(
        nodes=nodes,
        hours=hours,
        summary=utilization_summary(steady_idle, nodes),
        memory_used_fraction_mean=float(mem_used_steady),
        memory_allocated_fraction_mean=float(alloc_steady),
        sampled_idle=idle_duration_stats(sampled),
        exact_idle=idle_duration_stats(exact),
        completed_jobs=len(scheduler.completed),
    )


def format_report(result: Fig01Result) -> str:
    lines = [
        f"Fig. 1 — synthetic Piz-Daint trace: {result.nodes} nodes, "
        f"{result.hours:.0f} h, {result.completed_jobs} jobs completed",
        "",
        render_table(
            ["metric", "value"],
            [
                ["median idle nodes", result.summary["median_idle_nodes"]],
                ["mean idle nodes", result.summary["mean_idle_nodes"]],
                ["median allocated fraction", result.summary["median_allocated_fraction"]],
                ["mean memory used fraction", result.memory_used_fraction_mean],
                ["mean node-allocated fraction", result.memory_allocated_fraction_mean],
            ],
            title="Fig. 1a/1b aggregates",
        ),
        "",
        render_table(
            ["series", "periods", "median (min)", "mean (min)", "frac < 10 min", "p90 (min)"],
            [
                ["sampled (paper method)"] + result.sampled_idle.as_row(),
                ["exact (ground truth)"] + result.exact_idle.as_row(),
            ],
            title="Fig. 1c idle-period durations",
        ),
        "",
        "Paper: median idle ~3.4% of nodes; median idle period 5-6.5 min;"
        " 70-80% of idle periods < 10 min.",
    ]
    return "\n".join(lines)
