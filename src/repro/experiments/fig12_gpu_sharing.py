"""Experiment Fig. 12: GPU batch jobs sharing nodes with GPU functions.

The GPU versions of LULESH (27 ranks over 3 Daint GPU nodes, 9 of 12
cores each) and MILC (32 ranks as 11/11/10) run as the batch job; Rodinia
kernels — stand-ins for GPU functions, a few hundred milliseconds each —
run in a container bound to one spare core.

The batch slowdown combines host-side interference (the Rodinia driver
core + staging traffic) and device-side time-sharing while a Rodinia
kernel is resident.  Paper: overhead < 5 % except two outliers (6.1 %,
10.5 %) at the *smallest* LULESH problem size; requesting 9/12 cores
already saves 25 % of cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import render_table
from ..cluster import DAINT_GPU, NodeSpec
from ..disagg import core_hour_discount
from ..interference import InterferenceModel
from ..workloads import RODINIA_BENCHMARKS, lulesh_model, milc_model, rodinia_benchmark

__all__ = ["Fig12Cell", "Fig12Result", "run", "run_platform", "format_report"]

DEFAULT_RODINIA = ("backprop", "bfs", "hotspot", "kmeans", "lavamd", "needle",
                   "pathfinder", "srad")
DEFAULT_LULESH_SIZES = (20, 30, 45)
DEFAULT_MILC_SIZES = (8, 16, 24)

#: Fraction of wall time a repeatedly-launched Rodinia function keeps a
#: kernel resident on the device (launch gaps + host phases).
RODINIA_DUTY_CYCLE = 0.45

#: Device occupancy of the batch GPU apps (both keep the GPU busy).
BATCH_GPU_OCCUPANCY = 0.75


def _gpu_sensitivity(problem_size: int, smallest: int) -> float:
    """Small problems launch short kernels: launch latency and L2 churn
    make them disproportionately sensitive to a co-resident kernel."""
    if problem_size <= smallest:
        return 1.0
    return max(0.25, smallest / problem_size)


@dataclass(frozen=True)
class Fig12Cell:
    batch_app: str
    problem_size: int
    rodinia: str
    batch_slowdown: float


@dataclass
class Fig12Result:
    cells: list[Fig12Cell] = field(default_factory=list)
    cost_discount: float = 0.0


def run(
    rodinia_keys=DEFAULT_RODINIA,
    lulesh_sizes=DEFAULT_LULESH_SIZES,
    milc_sizes=DEFAULT_MILC_SIZES,
    spec: NodeSpec = DAINT_GPU,
    model: InterferenceModel = None,
) -> Fig12Result:
    model = model or InterferenceModel()
    result = Fig12Result(cost_discount=core_hour_discount(9, spec.cores))
    configs = [("lulesh", s, lulesh_model(s, gpu=True), 9, min(lulesh_sizes)) for s in lulesh_sizes]
    configs += [("milc", s, milc_model(s, gpu=True), 11, min(milc_sizes)) for s in milc_sizes]
    for app_name, size, app, ranks, smallest in configs:
        batch_demand = app.demand(ranks)
        batch_alone = model.slowdowns(spec, [batch_demand])[0]
        for key in rodinia_keys:
            bench = rodinia_benchmark(key)
            host_demand = bench.host.demand(1)
            # Host-side interference: driver core + staging traffic,
            # relative to the job's exclusive run.
            batch_host_slow = (
                model.slowdowns(spec, [batch_demand, host_demand])[0] / batch_alone
            )
            # Device-side: time-shared SMs while a Rodinia kernel resides.
            extra_occ = bench.gpu_occupancy * RODINIA_DUTY_CYCLE
            overload = max(0.0, BATCH_GPU_OCCUPANCY + extra_occ - 1.0)
            sensitivity = _gpu_sensitivity(size, smallest)
            gpu_slow = 1.0 + overload * sensitivity
            total = (
                (1 - app.gpu_fraction) * batch_host_slow
                + app.gpu_fraction * gpu_slow
            )
            result.cells.append(
                Fig12Cell(
                    batch_app=app_name, problem_size=size, rodinia=key,
                    batch_slowdown=max(1.0, total),
                )
            )
    return result


def run_platform(
    rodinia_keys=DEFAULT_RODINIA,
    lulesh_sizes=DEFAULT_LULESH_SIZES,
    milc_sizes=DEFAULT_MILC_SIZES,
    spec: NodeSpec = DAINT_GPU,
    model: InterferenceModel = None,
    seed: int = 0,
) -> Fig12Result:
    """Fig. 12 with the device share *measured* on the platform stack.

    Instead of the closed-form occupancy overload, each Rodinia function
    keeps a kernel resident on a live :class:`~repro.gpu.device.GpuDevice`
    (built by ``Platform.build(gpu=...)``) while the batch job launches
    its own kernel; the batch dilation is read off the simulated wall
    time.  The SM time-sharing rule makes the measured dilation
    ``max(1, occ_total)``, so the measured overload ``wall − 1`` equals
    the analytic ``max(0, occ_total − 1)`` *exactly* (IEEE identity) and
    the result is numerically identical to :func:`run` — asserted by
    ``tests/experiments/test_experiments.py``.
    """
    from ..api import ClusterSpec, Platform
    from ..gpuservice import GpuServiceConfig

    model = model or InterferenceModel()
    platform = Platform.build(
        ClusterSpec(nodes=1, jitter=0.0), seed=seed,
        gpu=GpuServiceConfig(gpu_nodes=1),
    )
    env = platform.env
    service = platform.gpu
    device_name, _ = service.online_slots()[0]
    device = service.leases.device_of(device_name)
    measured_overload: dict[str, float] = {}

    def probe():
        # One probe per Rodinia function: keep its kernel resident at the
        # duty-cycle-weighted occupancy, launch the batch job's kernel on
        # top, and measure the batch dilation from the kernel wall time.
        for key in rodinia_keys:
            bench = rodinia_benchmark(key)
            extra_occ = bench.gpu_occupancy * RODINIA_DUTY_CYCLE
            resident = device.launch(f"fn-{key}", 4.0, extra_occ)
            yield env.timeout(0.0)  # let the function kernel register
            wall = yield device.launch("batch", 1.0, BATCH_GPU_OCCUPANCY)
            measured_overload[key] = wall - 1.0
            yield resident          # drain the device before the next probe

    platform.process(probe())
    platform.run()
    service.stop()
    platform.run()

    result = Fig12Result(cost_discount=core_hour_discount(9, spec.cores))
    configs = [("lulesh", s, lulesh_model(s, gpu=True), 9, min(lulesh_sizes)) for s in lulesh_sizes]
    configs += [("milc", s, milc_model(s, gpu=True), 11, min(milc_sizes)) for s in milc_sizes]
    for app_name, size, app, ranks, smallest in configs:
        batch_demand = app.demand(ranks)
        batch_alone = model.slowdowns(spec, [batch_demand])[0]
        for key in rodinia_keys:
            bench = rodinia_benchmark(key)
            host_demand = bench.host.demand(1)
            batch_host_slow = (
                model.slowdowns(spec, [batch_demand, host_demand])[0] / batch_alone
            )
            gpu_slow = 1.0 + measured_overload[key] * _gpu_sensitivity(size, smallest)
            total = (
                (1 - app.gpu_fraction) * batch_host_slow
                + app.gpu_fraction * gpu_slow
            )
            result.cells.append(
                Fig12Cell(
                    batch_app=app_name, problem_size=size, rodinia=key,
                    batch_slowdown=max(1.0, total),
                )
            )
    return result


def format_report(result: Fig12Result) -> str:
    rows = [
        [c.batch_app, c.problem_size, c.rodinia,
         f"{(c.batch_slowdown - 1) * 100:.2f}%"]
        for c in result.cells
    ]
    table = render_table(
        ["batch app", "size", "rodinia fn", "batch slowdown"],
        rows,
        title="Fig. 12 — GPU co-location: batch GPU job + Rodinia functions",
    )
    worst = max(result.cells, key=lambda c: c.batch_slowdown)
    return table + (
        f"\nWorst case: {worst.batch_app} size {worst.problem_size} with"
        f" {worst.rodinia}: {(worst.batch_slowdown - 1) * 100:.1f}%."
        f"\n9/12-core request discount: {result.cost_discount * 100:.0f}%"
        " (paper: 25%)."
        "\nPaper: overhead < 5% except outliers 6.1% and 10.5% at the"
        " smallest LULESH size."
    )
