"""GPU batching sweep: the batch-size vs throughput/latency tradeoff.

Kernel-as-a-service backends buy their throughput by *batching*:
queued inference invocations coalesce into one kernel launch, so the
per-launch fixed costs (dispatch setup, per-kernel launch overhead)
amortize and each extra batch element costs only a marginal fraction
of a full kernel pass.  This sweep drives the
:class:`~repro.gpuservice.GpuService` at a sequence of
``max_batch_size`` settings and maps the tradeoff:

* **throughput rises, then plateaus** — per-request device time falls
  as ``T(B)/B``, but the marginal term dominates for large ``B`` and
  the offered load caps at ``max_rate_rps``;
* **tail latency grows** — a request waits for its batch to fill
  ((B−1) arrival gaps at the front of a batch) and then rides a longer
  coalesced launch, so p99 climbs monotonically with ``B``.

Methodology (all arithmetic, no RNG): for each batch size the offered
rate is ``min(max_rate_rps, utilization · capacity(B))`` with
``capacity(B) = devices · B / S(B)``, where ``S(B)`` is the
steady-state per-batch service time (input transfer + dispatch setup +
coalesced kernel sequence).  Arrivals are evenly spaced open-loop, one
stream per function, two functions leased onto two devices — so every
scenario is a pure function of ``(params, seed)`` and the result JSON
is byte-identical at any ``--jobs`` count and across fresh
interpreters (asserted by ``tests/sweep/test_parallel_determinism.py``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from ..analysis.tables import render_table
from ..api import ClusterSpec, Platform
from ..gpu.gpu_function import GpuFunctionSpec
from ..gpuservice import BatchPolicy, GpuServiceConfig
from ..telemetry import NULL_TELEMETRY, telemetry_of
from .base import ScenarioSpec, Sweep, SweepPlan, register_sweep, result_to_json

__all__ = [
    "GpuScalingPoint",
    "GpuScalingResult",
    "scenario",
    "plan_scenarios",
    "assemble",
    "run",
    "format_report",
    "SWEEP",
]

#: Batch sizes swept (1 = the unbatched baseline).
DEFAULT_BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64, 128)

#: Open-loop request streams: one per function, each on its own device.
FUNCTIONS = ("infer_a", "infer_b")

#: The inference function shape (one spec shared by both streams).
KERNEL_COUNT = 16
KERNEL_TIME_S = 0.0008
OCCUPANCY = 0.5
INPUT_BYTES = 1_000_000
DEVICE_MEMORY_BYTES = 256 * 1024**2

#: Target device utilization of the offered load.
UTILIZATION = 0.9


@dataclass(frozen=True)
class GpuScalingPoint:
    """Outcome of one ``max_batch_size`` setting."""

    label: str
    batch_size: int
    offered_rps: float
    throughput_rps: float
    p50_ms: float
    p99_ms: float
    mean_batch_size: float
    batches: int
    size_flushes: int
    timer_flushes: int
    completed: int


@dataclass
class GpuScalingResult:
    points: list[GpuScalingPoint] = field(default_factory=list)
    requests: int = 0
    seed: int = 0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "seed": self.seed,
            "points": [asdict(p) for p in self.points],
        }

    def to_json(self) -> str:
        return result_to_json(self)

    def format_report(self) -> str:
        rows = []
        for p in self.points:
            rows.append([
                p.batch_size, f"{p.offered_rps:.1f}", f"{p.throughput_rps:.1f}",
                f"{p.p50_ms:.2f}", f"{p.p99_ms:.2f}",
                f"{p.mean_batch_size:.2f}", p.size_flushes, p.timer_flushes,
            ])
        table = render_table(
            ["batch", "offered (r/s)", "throughput (r/s)", "p50 (ms)",
             "p99 (ms)", "mean batch", "size flushes", "timer flushes"],
            rows,
            title=(f"GPU invocation batching — {self.requests} requests per "
                   f"stream, {len(FUNCTIONS)} streams"),
        )
        return table + (
            "\nBatching amortizes launch overheads: throughput rises with the"
            " batch size until the offered-rate cap, while p99 pays the"
            " batch-fill wait plus the longer coalesced launch."
        )


def _function_spec(name: str) -> GpuFunctionSpec:
    return GpuFunctionSpec(
        name=name,
        kernel_count=KERNEL_COUNT,
        kernel_time_s=KERNEL_TIME_S,
        occupancy=OCCUPANCY,
        input_bytes=INPUT_BYTES,
        device_memory_bytes=DEVICE_MEMORY_BYTES,
    )


def _service_time_s(batch_size: int, config: GpuServiceConfig) -> float:
    """Steady-state per-batch service time S(B) of one full batch."""
    transfer = batch_size * INPUT_BYTES / config.pcie_bandwidth
    kernel = KERNEL_COUNT * (
        config.launch_overhead_s
        + KERNEL_TIME_S * (1.0 + (batch_size - 1) * config.batch_marginal)
    )
    return transfer + config.setup_s + kernel


def _offered_rate(batch_size: int, max_rate_rps: float,
                  config: GpuServiceConfig) -> float:
    """Sustainable offered rate across both streams for one batch size."""
    capacity = len(FUNCTIONS) * batch_size / _service_time_s(batch_size, config)
    return min(max_rate_rps, UTILIZATION * capacity)


def _percentile(sorted_values: list, q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _request_stream(env, service, function: str, count: int, gap_s: float,
                    latencies: list, finish_times: list):
    """Open-loop submission (``count`` evenly spaced arrivals), then
    collect every completion — awaiting only after the last submit keeps
    the arrival process independent of service latency."""
    requests = []
    for _ in range(count):
        requests.append(service.submit(function))
        yield env.timeout(gap_s)
    for request in requests:
        value = yield request.done
        latencies.append(value["latency_s"])
    # ``env.now`` is this stream's last completion: batches of one
    # (device, function) pair complete FIFO, so the final ``done``
    # resolves last.  Pending no-op batch timers run the clock past
    # this, which is why the makespan is taken here and not after the
    # drain.
    finish_times.append(env.now)


def scenario(params: dict, seed: int) -> dict:
    """One batch-size setting as a pure function of ``(params, seed)``.

    ``params``: ``batch_size``, ``requests`` (per stream),
    ``max_rate_rps``.  Returns the :class:`GpuScalingPoint` as a dict.
    """
    batch_size: int = params["batch_size"]
    per_stream: int = params["requests"]
    max_rate_rps: float = params["max_rate_rps"]
    config = GpuServiceConfig(
        gpu_nodes=2,
        policy=BatchPolicy(max_batch_size=batch_size, max_wait_s=1.0),
    )
    # Join an active TelemetryCollector (the CLI's --metrics-out/--trace)
    # when there is one; otherwise pin a private scope.
    collector_active = telemetry_of(None) is not NULL_TELEMETRY
    platform = Platform.build(
        ClusterSpec(nodes=2, jitter=0.0), seed=seed,
        telemetry=(None if collector_active else True),
        gpu=config,
    )
    env = platform.env
    service = platform.gpu
    offered = _offered_rate(batch_size, max_rate_rps, config)
    gap_s = len(FUNCTIONS) / offered   # per-stream arrival gap
    latencies: list = []
    finish_times: list = []
    for function in FUNCTIONS:
        service.register(_function_spec(function))
        platform.process(
            _request_stream(env, service, function, per_stream, gap_s,
                            latencies, finish_times)
        )
    platform.run()
    service.stop()
    platform.run()

    total = service.completed
    makespan = max(finish_times) if finish_times else 0.0
    latencies.sort()
    batcher = service.batcher
    return asdict(GpuScalingPoint(
        label=f"B={batch_size}",
        batch_size=batch_size,
        offered_rps=round(offered, 6),
        throughput_rps=round(total / makespan, 6) if makespan > 0 else 0.0,
        p50_ms=round(_percentile(latencies, 0.50) * 1e3, 6),
        p99_ms=round(_percentile(latencies, 0.99) * 1e3, 6),
        mean_batch_size=round(total / service.batches, 6) if service.batches else 0.0,
        batches=service.batches,
        size_flushes=batcher.flushes_on_size,
        timer_flushes=batcher.flushes_on_timer,
        completed=total,
    ))


def plan_scenarios(
    batch_sizes=DEFAULT_BATCH_SIZES,
    requests: int = 4096,
    max_rate_rps: float = 800.0,
    seed: int = 0,
) -> SweepPlan:
    """Fix the canonical scenario order: one scenario per batch size."""
    if requests < 1:
        raise ValueError("need at least one request per stream")
    if max_rate_rps <= 0:
        raise ValueError("max_rate_rps must be positive")
    scenarios = tuple(
        ScenarioSpec(
            fn=scenario,
            params={
                "batch_size": int(b),
                "requests": requests,
                "max_rate_rps": max_rate_rps,
            },
            seed=seed,
            label=f"B={int(b)}",
        )
        for b in batch_sizes
    )
    return SweepPlan(scenarios=scenarios,
                     meta={"requests": requests, "seed": seed})


def assemble(points: list[dict], meta: dict) -> GpuScalingResult:
    """Rebuild the typed result from point dicts, in plan order."""
    result = GpuScalingResult(requests=meta["requests"], seed=meta["seed"])
    result.points = [GpuScalingPoint(**point) for point in points]
    return result


def run(
    batch_sizes=DEFAULT_BATCH_SIZES,
    requests: int = 4096,
    max_rate_rps: float = 800.0,
    seed: int = 0,
) -> GpuScalingResult:
    """Serial shim: sweep the batch sizes one scenario at a time.

    For multi-core execution use :func:`repro.sweep.run_sweep`
    (``repro sweep gpu_scaling --jobs N``).
    """
    return SWEEP.run_serial(
        batch_sizes=batch_sizes, requests=requests,
        max_rate_rps=max_rate_rps, seed=seed,
    )


def format_report(result: GpuScalingResult) -> str:
    return result.format_report()


SWEEP = register_sweep(Sweep(
    name="gpu_scaling",
    description="GPU invocation batching: batch size vs throughput/latency",
    plan=plan_scenarios,
    assemble=assemble,
    result_type=GpuScalingResult,
))
