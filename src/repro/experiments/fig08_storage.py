"""Experiment Fig. 8: parallel filesystem vs. object storage I/O.

Sweeps file size and reader count over the Lustre and MinIO models,
reporting per-read latency and aggregate throughput.  Expected shape
(paper): the object store wins on latency for small files; Lustre
delivers higher throughput at scale (large files, many readers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import render_table
from ..storage import LustreModel, ObjectStoreModel, TieredFunctionStorage

__all__ = ["Fig08Point", "Fig08Result", "run", "format_report"]

KiB, MiB, GiB = 1024, 1024**2, 1024**3

DEFAULT_SIZES = (4 * KiB, 64 * KiB, 1 * MiB, 16 * MiB, 256 * MiB, 1 * GiB)
DEFAULT_READERS = (1, 4, 16, 64)


@dataclass(frozen=True)
class Fig08Point:
    size_bytes: int
    readers: int
    lustre_latency_s: float
    minio_latency_s: float
    lustre_throughput: float        # aggregate bytes/s
    minio_throughput: float

    @property
    def minio_wins_latency(self) -> bool:
        return self.minio_latency_s < self.lustre_latency_s


@dataclass
class Fig08Result:
    points: list[Fig08Point] = field(default_factory=list)
    crossover_bytes_single_reader: int = 0


def run(sizes=DEFAULT_SIZES, readers=DEFAULT_READERS,
        pfs: LustreModel = None, store: ObjectStoreModel = None) -> Fig08Result:
    pfs = pfs or LustreModel()
    store = store or ObjectStoreModel()
    result = Fig08Result()
    for size in sizes:
        for n in readers:
            result.points.append(
                Fig08Point(
                    size_bytes=size,
                    readers=n,
                    lustre_latency_s=pfs.read_time(size, n),
                    minio_latency_s=store.read_time(size, n),
                    lustre_throughput=pfs.aggregate_throughput(size, n),
                    minio_throughput=store.aggregate_throughput(size, n),
                )
            )
    tiered = TieredFunctionStorage(pfs=pfs, cache=store)
    result.crossover_bytes_single_reader = tiered.crossover_size()
    return result


def format_report(result: Fig08Result) -> str:
    rows = [
        [
            p.size_bytes, p.readers,
            p.lustre_latency_s * 1e3, p.minio_latency_s * 1e3,
            p.lustre_throughput / 1e9, p.minio_throughput / 1e9,
            "minio" if p.minio_wins_latency else "lustre",
        ]
        for p in result.points
    ]
    table = render_table(
        ["size (B)", "readers", "lustre lat (ms)", "minio lat (ms)",
         "lustre agg (GB/s)", "minio agg (GB/s)", "latency winner"],
        rows,
        title="Fig. 8 — Lustre vs MinIO",
    )
    return table + (
        f"\nLatency crossover (1 reader): {result.crossover_bytes_single_reader / MiB:.1f} MiB."
        "\nPaper: object storage lower latency for small files; Lustre"
        " higher throughput at scale."
    )
