"""Experiment Fig. 9: CPU sharing — batch jobs co-located with FaaS work.

LULESH (64 ranks, 32 of 36 cores on each of 2 nodes) and MILC run as the
classical batch job; serial NAS benchmarks occupy the leftover 4 cores
per node as a FaaS-like workload.  Reported: the batch job's slowdown
(Fig. 9a) and the FaaS-like application's slowdown (Fig. 9b), per NAS
benchmark and problem size.

Paper reference: the impact on the batch job is *negligible* (within
measurement noise); the container-side slowdown is visible but
acceptable; requesting 32/36 cores already saves ~11 % of cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import render_table
from ..cluster import DAINT_MC, NodeSpec
from ..disagg import JobBill, core_hour_discount
from ..interference import InterferenceModel
from ..workloads import lulesh_model, milc_model, nas_model

__all__ = ["Fig09Cell", "Fig09Result", "run", "format_report"]

DEFAULT_NAS = ("bt.W", "cg.A", "ep.W", "lu.W")
DEFAULT_LULESH_SIZES = (20, 30, 45)
DEFAULT_MILC_SIZES = (8, 16, 24)


@dataclass(frozen=True)
class Fig09Cell:
    batch_app: str
    problem_size: int
    nas: str
    batch_slowdown: float
    faas_slowdown: float
    net_saving: float          # billing discount minus slowdown cost


@dataclass
class Fig09Result:
    cells: list[Fig09Cell] = field(default_factory=list)
    batch_cores: int = 32
    faas_cores: int = 4


def run(
    nas_keys=DEFAULT_NAS,
    lulesh_sizes=DEFAULT_LULESH_SIZES,
    milc_sizes=DEFAULT_MILC_SIZES,
    spec: NodeSpec = DAINT_MC,
    batch_cores: int = 32,
    model: InterferenceModel = None,
) -> Fig09Result:
    model = model or InterferenceModel()
    faas_cores = spec.cores - batch_cores
    result = Fig09Result(batch_cores=batch_cores, faas_cores=faas_cores)
    apps = [("lulesh", s, lulesh_model(s)) for s in lulesh_sizes]
    apps += [("milc", s, milc_model(s)) for s in milc_sizes]
    for batch_name, size, app in apps:
        batch_demand = app.demand(batch_cores)
        # Exclusive baselines: each workload alone on its node(s); the
        # co-location slowdown is the ratio to these, not to an idle node
        # (a 32-rank job pays its own frequency/cache costs regardless).
        batch_alone = model.slowdowns(spec, [batch_demand])[0]
        for key in nas_keys:
            faas_demand = nas_model(key).demand(faas_cores)
            faas_alone = model.slowdowns(spec, [faas_demand])[0]
            both = model.slowdowns(spec, [batch_demand, faas_demand])
            batch_slow = both[0] / batch_alone
            faas_slow = both[1] / faas_alone
            bill = JobBill(
                nodes=2, node_cores=spec.cores, requested_cores_per_node=batch_cores,
                runtime_s=app.runtime_s, slowdown=batch_slow,
            )
            result.cells.append(
                Fig09Cell(
                    batch_app=batch_name, problem_size=size, nas=key,
                    batch_slowdown=batch_slow, faas_slowdown=faas_slow,
                    net_saving=bill.saving_fraction(),
                )
            )
    return result


def format_report(result: Fig09Result) -> str:
    rows = [
        [c.batch_app, c.problem_size, c.nas,
         f"{(c.batch_slowdown - 1) * 100:.2f}%",
         f"{(c.faas_slowdown - 1) * 100:.2f}%",
         f"{c.net_saving * 100:.1f}%"]
        for c in result.cells
    ]
    table = render_table(
        ["batch app", "size", "NAS fn", "batch slowdown", "FaaS slowdown", "net saving"],
        rows,
        title=(
            f"Fig. 9 — CPU sharing: batch on {result.batch_cores}/36 cores,"
            f" NAS functions on {result.faas_cores}"
        ),
    )
    discount = core_hour_discount(result.batch_cores, result.batch_cores + result.faas_cores)
    return table + (
        f"\nCore-hour discount from requesting {result.batch_cores}/36 cores:"
        f" {discount * 100:.1f}% (paper: ~11%)."
        "\nPaper: batch impact negligible; FaaS-side slowdown higher but"
        " the resources were otherwise wasted."
    )
