"""Control-plane HA experiment: surviving the resource manager's death.

The same fault storm — a lease storm landing at the very instant the
primary :class:`~repro.rfaas.ResourceManager` crashes, a second storm
during a primary *partition*, and an executor-node crash for good
measure — replayed against control planes with 0, 1, and 2 standby
replicas (``repro.controlplane``).  Clients run under a
:class:`~repro.faults.RetryPolicy`, so a dead manager costs backoff
latency, not failures — *if* a standby exists to take over.

Expected shape: with ``k = 0`` the crash erases all lease state and the
restarted (empty) primary rejects the storm — completion collapses.
With ``k >= 1`` the failure detector promotes a standby within 2–3
heartbeat timeouts, the fenced ex-primary cannot grant after the
partition heals, and completion recovers to >= 99 % at a tail-latency
cost.  Every scenario also replays the chaos-certification invariants
(:mod:`repro.faults.certify`) over the fenced commit log: no double
grants, one primary per epoch, monotone epochs, no silent drops.

Sweep protocol: :func:`scenario` is a pure module-level function of
``(params, seed)``; registered as the ``manager_failover`` sweep, so
``repro managerha --jobs N`` is byte-identical at any jobs count.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from ..analysis.tables import render_table
from ..api import ClusterSpec, Platform
from ..containers import Image
from ..controlplane import HAConfig
from ..faults import (
    FaultPlan,
    RecoveryOutcome,
    RetryPolicy,
    check_conservation,
    check_epoch_monotonic,
    check_no_double_grant,
    check_single_primary,
)
from ..interference import ResourceDemand
from ..telemetry import NULL_TELEMETRY, telemetry_of
from .base import ScenarioSpec, Sweep, SweepPlan, register_sweep, result_to_json

__all__ = [
    "FailoverPoint",
    "FailoverResult",
    "default_plan",
    "scenario",
    "plan_scenarios",
    "assemble",
    "run",
    "format_report",
    "SWEEP",
]

MiB = 1024**2
GiB = 1024**3

#: Standby counts swept by default: the k=0 strawman, the paper-shaped
#: single standby, and a belt-and-braces pair.
DEFAULT_STANDBYS = (0, 1, 2)

#: Deep attempt budget: a manager outage costs several backoff rounds.
SWEEP_POLICY = RetryPolicy(
    max_attempts=7, backoff_base_s=0.05, backoff_multiplier=2.0, backoff_max_s=1.0,
)


@dataclass(frozen=True)
class FailoverPoint:
    """Outcome of one scenario (one standby count)."""

    label: str
    standbys: int
    invocations: int
    completed: int
    p50_ms: float
    p99_ms: float
    manager_down_retries: int
    failovers: int
    epochs: int
    fenced_grants: int
    orphaned_leases: int
    recovered: int
    rejected: int
    invariants_ok: bool

    @property
    def completion_ratio(self) -> float:
        return self.completed / self.invocations if self.invocations else 0.0


@dataclass
class FailoverResult:
    points: list[FailoverPoint] = field(default_factory=list)
    window_s: float = 0.0
    seed: int = 0

    def to_dict(self) -> dict:
        return {
            "window_s": self.window_s,
            "seed": self.seed,
            "points": [asdict(p) for p in self.points],
        }

    def to_json(self) -> str:
        return result_to_json(self)

    def format_report(self) -> str:
        rows = []
        for p in self.points:
            rows.append([
                p.label, p.invocations,
                f"{p.completion_ratio * 100:.1f}%",
                f"{p.p50_ms:.3f}", f"{p.p99_ms:.3f}",
                p.manager_down_retries, p.failovers, p.epochs,
                p.fenced_grants, p.orphaned_leases,
                "PASS" if p.invariants_ok else "FAIL",
            ])
        table = render_table(
            ["standbys", "invocations", "completed", "p50 (ms)", "p99 (ms)",
             "mgr retries", "failovers", "epochs", "fenced", "orphaned",
             "invariants"],
            rows,
            title=(f"Manager failover — lease storms through primary "
                   f"crash + partition ({self.window_s:g}s window)"),
        )
        return table + (
            "\nWith zero standbys the crash orphans every lease; one standby"
            " turns the outage into tail latency."
        )


def default_plan(window_s: float, name: str = "managerha") -> FaultPlan:
    """The canonical storm: clients must re-lease *into* each outage.

    A client holding a valid lease never talks to the manager, so each
    manager fault is paired with a lease storm at the *same* timestamp
    (ties keep plan order: storm first, then the fault) — the revoked
    clients then hit a dead/partitioned control plane and exercise the
    typed :class:`~repro.rfaas.ManagerUnavailableError` retry path.
    """
    return (FaultPlan(name=name)
            .lease_storm(at_s=0.2 * window_s, count=8)
            .manager_crash(at_s=0.2 * window_s, duration_s=0.25 * window_s)
            .lease_storm(at_s=0.55 * window_s, count=8)
            .manager_partition(at_s=0.55 * window_s, duration_s=0.12 * window_s)
            .node_crash(at_s=0.8 * window_s, duration_s=0.1 * window_s,
                        immediate=True))


def _metric_sum(registry, name: str, **labels) -> float:
    wanted = set(labels.items())
    return sum(m.value for m in registry
               if m.name == name and wanted <= set(m.labels))


def _invocation_stream(env, client, outcomes, started, window_s: float,
                       payload_bytes: int):
    """Paced closed-loop invocations.

    The pacing timeout matters: after a k=0 wipe every lease attempt is
    rejected *instantly* (no sim-time cost), and an unpaced loop would
    spin forever in real time.  Rejected attempts stay in ``outcomes``
    so the k=0 row honestly shows the lost work, and ``started`` feeds
    the conservation invariant (started == concluded).
    """
    while env.now < window_s:
        started["n"] += 1
        detailed = yield client.invoke_detailed("noop", payload_bytes=payload_bytes)
        outcomes.append(detailed)
        yield env.timeout(0.005)


def scenario(params: dict, seed: int) -> dict:
    """One standby count as a pure function of ``(params, seed)``."""
    standbys: int = params["standbys"]
    window_s: float = params["window_s"]
    runtime_s: float = params["runtime_s"]
    payload_bytes: int = params["payload_bytes"]
    streams: int = params["streams"]
    heartbeat_interval_s: float = params["heartbeat_interval_s"]
    suspect_after: int = params["suspect_after"]
    collector_active = telemetry_of(None) is not NULL_TELEMETRY
    platform = Platform.build(
        ClusterSpec(nodes=4), seed=seed,
        telemetry=(None if collector_active else True),
        faults=default_plan(window_s),
        ha=HAConfig(standbys=standbys,
                    heartbeat_interval_s=heartbeat_interval_s,
                    suspect_after=suspect_after),
    )
    env = platform.env
    for i in range(1, 4):
        platform.register_node(f"n{i:04d}", cores=4, memory_bytes=8 * GiB)
    image = Image("managerha-noop", size_bytes=50 * MiB)
    platform.functions.register(
        "noop", image, runtime_s=runtime_s,
        demand=ResourceDemand(cores=1, membw=0.0, frac_membw=0.0),
        output_bytes=1,
    )
    client = platform.client("n0000", retry_policy=SWEEP_POLICY)
    outcomes = []
    started = {"n": 0}
    for _ in range(streams):
        platform.process(_invocation_stream(env, client, outcomes, started,
                                            window_s, payload_bytes))
    platform.run_until(window_s + 30.0)
    platform.ha.stop()
    client.close()
    platform.run()

    ha = platform.ha
    census: dict[str, int] = {}
    for d in outcomes:
        census[d.outcome.value] = census.get(d.outcome.value, 0) + 1
    invariants_ok = not (
        check_conservation(started["n"], census)
        or check_no_double_grant(ha.commit_log)
        or check_single_primary(ha.elections, ha.replicas)
        or check_epoch_monotonic(ha.commit_log)
    )
    latencies = [d.elapsed_s for d in outcomes if d.ok]
    p50 = float(np.median(latencies)) if latencies else float("nan")
    p99 = float(np.percentile(latencies, 99)) if latencies else float("nan")
    registry = platform.telemetry.metrics
    return asdict(FailoverPoint(
        label=f"k={standbys}",
        standbys=standbys,
        invocations=len(outcomes),
        completed=sum(1 for d in outcomes if d.ok),
        p50_ms=p50 * 1e3,
        p99_ms=p99 * 1e3,
        manager_down_retries=int(_metric_sum(
            registry, "repro_faults_retries_total", reason="manager_down")),
        failovers=int(_metric_sum(
            registry, "repro_controlplane_failovers_total")),
        epochs=ha.epoch,
        fenced_grants=int(_metric_sum(
            registry, "repro_controlplane_fenced_grants_total")),
        orphaned_leases=int(_metric_sum(
            registry, "repro_controlplane_orphaned_leases_total")),
        recovered=sum(1 for d in outcomes
                      if d.outcome is RecoveryOutcome.RECOVERED),
        rejected=sum(1 for d in outcomes
                     if d.outcome is RecoveryOutcome.REJECTED),
        invariants_ok=invariants_ok,
    ))


def plan_scenarios(
    standbys=DEFAULT_STANDBYS,
    window_s: float = 20.0,
    seed: int = 0,
    runtime_s: float = 0.02,
    payload_bytes: int = 1024,
    streams: int = 3,
    heartbeat_interval_s: float = 0.1,
    suspect_after: int = 3,
) -> SweepPlan:
    """Fix the canonical scenario order (and each scenario's seed)."""
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    scenarios = tuple(
        ScenarioSpec(
            fn=scenario,
            params={
                "standbys": k,
                "window_s": window_s,
                "runtime_s": runtime_s,
                "payload_bytes": payload_bytes,
                "streams": streams,
                "heartbeat_interval_s": heartbeat_interval_s,
                "suspect_after": suspect_after,
            },
            seed=seed,
            label=f"k={k}",
        )
        for k in standbys
    )
    return SweepPlan(scenarios=scenarios,
                     meta={"window_s": window_s, "seed": seed})


def assemble(points: list[dict], meta: dict) -> FailoverResult:
    """Rebuild the typed result from point dicts, in plan order."""
    result = FailoverResult(window_s=meta["window_s"], seed=meta["seed"])
    result.points = [FailoverPoint(**point) for point in points]
    return result


def run(
    standbys=DEFAULT_STANDBYS,
    window_s: float = 20.0,
    seed: int = 0,
    runtime_s: float = 0.02,
    payload_bytes: int = 1024,
    streams: int = 3,
    heartbeat_interval_s: float = 0.1,
    suspect_after: int = 3,
) -> FailoverResult:
    """Serial shim over the sweep protocol (``repro managerha``)."""
    return SWEEP.run_serial(
        standbys=standbys, window_s=window_s, seed=seed, runtime_s=runtime_s,
        payload_bytes=payload_bytes, streams=streams,
        heartbeat_interval_s=heartbeat_interval_s, suspect_after=suspect_after,
    )


def format_report(result: FailoverResult) -> str:
    return result.format_report()


SWEEP = register_sweep(Sweep(
    name="manager_failover",
    description="completion through manager crash/partition, by standby count",
    plan=plan_scenarios,
    assemble=assemble,
    result_type=FailoverResult,
))
