"""Experiment Fig. 11: batch jobs sharing a node with remote-memory traffic.

An rFaaS memory-service function pins 1 GB on the batch job's node;
a remote client issues 10 MB RDMA reads/writes with varying pauses
between operations, injecting up to ~10 GB/s.  Measured: the batch job's
slowdown as a function of the injected traffic rate.

Paper reference: LULESH (27 and 125 ranks) is insensitive regardless of
problem size; MILC (32 ranks) is perturbed, more at larger problem sizes
— it is memory-bandwidth-bound, and the service traffic consumes both
NIC and DRAM bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import render_table
from ..cluster import AULT, NodeSpec
from ..interference import InterferenceModel
from ..network import IBVERBS, FabricProvider
from ..workloads import lulesh_model, milc_model

__all__ = ["Fig11Point", "Fig11Result", "run", "format_report"]

MiB = 1024**2

#: Pause between consecutive 10 MB operations (seconds); 0 = back-to-back.
DEFAULT_INTERVALS = (0.0, 0.001, 0.01, 0.1)
DEFAULT_OP_BYTES = 10 * MiB


@dataclass(frozen=True)
class Fig11Point:
    app: str
    ranks: int
    problem_size: int
    interval_s: float
    traffic_bw: float          # injected bytes/s
    slowdown: float


@dataclass
class Fig11Result:
    points: list[Fig11Point] = field(default_factory=list)
    op_bytes: int = DEFAULT_OP_BYTES


def _traffic_bandwidth(op_bytes: int, interval_s: float, provider: FabricProvider) -> float:
    """Offered RMA load: one op of ``op_bytes`` per (interval + op time)."""
    op_time = provider.params.rdma_read(op_bytes)
    return op_bytes / (interval_s + op_time)


def run(
    intervals=DEFAULT_INTERVALS,
    op_bytes: int = DEFAULT_OP_BYTES,
    spec: NodeSpec = AULT,
    provider: FabricProvider = IBVERBS,
    model: InterferenceModel = None,
) -> Fig11Result:
    """The Ault experiment: LULESH 27/125 ranks and MILC 32 ranks."""
    model = model or InterferenceModel()
    result = Fig11Result(op_bytes=op_bytes)
    configs = [
        ("lulesh", 27, 30, lulesh_model(30)),
        ("lulesh", 32, 45, lulesh_model(45)),   # the 125-rank run: 32 ranks/node
        ("milc", 32, 16, milc_model(16)),
        ("milc", 32, 24, milc_model(24)),
    ]
    for app_name, ranks_on_node, size, app in configs:
        demand = app.demand(ranks_on_node)
        # Exclusive baseline: the job alone on the node, no service traffic.
        alone = model.slowdowns(spec, [demand])[0]
        for interval in intervals:
            bw = _traffic_bandwidth(op_bytes, interval, provider)
            slowdown = model.slowdowns(
                spec, [demand], extra_netbw=bw, extra_membw=bw
            )[0] / alone
            result.points.append(
                Fig11Point(
                    app=app_name, ranks=ranks_on_node, problem_size=size,
                    interval_s=interval, traffic_bw=bw, slowdown=slowdown,
                )
            )
    return result


def format_report(result: Fig11Result) -> str:
    rows = [
        [p.app, p.ranks, p.problem_size,
         f"{p.interval_s * 1e3:.0f} ms",
         f"{p.traffic_bw / 1e9:.2f} GB/s",
         f"{(p.slowdown - 1) * 100:.2f}%"]
        for p in result.points
    ]
    table = render_table(
        ["app", "ranks/node", "size", "op pause", "injected traffic", "slowdown"],
        rows,
        title=f"Fig. 11 — remote-memory traffic ({result.op_bytes // MiB} MB ops, 1 GB pinned buffer)",
    )
    return table + (
        "\nPaper: LULESH unaffected at any rate (up to ~10 GB/s); MILC more"
        " sensitive at larger problem sizes."
    )
