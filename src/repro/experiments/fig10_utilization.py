"""Experiment Fig. 10: system utilization of three placement scenarios.

For each NAS workload co-located with the LULESH batch job, compares
core-time utilization of (a) co-located execution, (b) partially
co-located execution (ideal per-core billing, separate nodes), and (c)
standard exclusive allocations.  Paper: improvements up to ~52 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import render_table
from ..cluster import DAINT_MC, NodeSpec
from ..disagg import colocation_scenarios
from ..interference import InterferenceModel
from ..workloads import lulesh_model, nas_model

__all__ = ["Fig10Row", "Fig10Result", "run", "format_report"]

DEFAULT_NAS = ("bt.W", "cg.A", "ep.W", "lu.W")


@dataclass(frozen=True)
class Fig10Row:
    nas: str
    exclusive: float
    partial: float
    colocated: float
    improvement_vs_exclusive: float
    improvement_vs_partial: float


@dataclass
class Fig10Result:
    rows: list[Fig10Row] = field(default_factory=list)
    max_improvement: float = 0.0


def run(
    nas_keys=DEFAULT_NAS,
    spec: NodeSpec = DAINT_MC,
    batch_cores: int = 32,
    batch_nodes: int = 2,
    lulesh_size: int = 30,
    function_busy_fraction: float = 0.5,
    model: InterferenceModel = None,
) -> Fig10Result:
    model = model or InterferenceModel()
    faas_cores = spec.cores - batch_cores
    app = lulesh_model(lulesh_size)
    result = Fig10Result()
    batch_demand = app.demand(batch_cores)
    batch_alone = model.slowdowns(spec, [batch_demand])[0]
    for key in nas_keys:
        faas_demand = nas_model(key).demand(faas_cores)
        batch_slow = (
            model.slowdowns(spec, [batch_demand, faas_demand])[0] / batch_alone
        )
        scenarios = colocation_scenarios(
            node_cores=spec.cores,
            batch_nodes=batch_nodes,
            batch_cores_per_node=batch_cores,
            batch_runtime_s=app.runtime_s,
            function_cores_per_node=faas_cores,
            function_busy_fraction=function_busy_fraction,
            batch_slowdown=batch_slow,
        )
        coloc, partial, exclusive = (
            scenarios["colocated"], scenarios["partial"], scenarios["exclusive"]
        )
        row = Fig10Row(
            nas=key,
            exclusive=exclusive.utilization,
            partial=partial.utilization,
            colocated=coloc.utilization,
            improvement_vs_exclusive=coloc.improvement_over(exclusive),
            improvement_vs_partial=coloc.improvement_over(partial),
        )
        result.rows.append(row)
        result.max_improvement = max(result.max_improvement, row.improvement_vs_exclusive)
    return result


def format_report(result: Fig10Result) -> str:
    rows = [
        [r.nas, f"{r.exclusive * 100:.1f}%", f"{r.partial * 100:.1f}%",
         f"{r.colocated * 100:.1f}%",
         f"+{r.improvement_vs_partial * 100:.0f}%",
         f"+{r.improvement_vs_exclusive * 100:.0f}%"]
        for r in result.rows
    ]
    table = render_table(
        ["NAS fn", "exclusive util", "partial util", "co-located util",
         "gain vs partial", "gain vs exclusive"],
        rows,
        title="Fig. 10 — system utilization by placement scenario",
    )
    return table + (
        f"\nBest co-location gain vs exclusive allocation: "
        f"+{result.max_improvement * 100:.0f}% (paper: up to ~52%)."
    )
