"""Memory-durability experiment: remote paging through a crash+drain storm.

The paper's remote-paging use case (Sec. III-C) runs on memory-service
buffers in *ephemeral* node memory — exactly the memory a batch system
reclaims and a node crash destroys.  This sweep quantifies what the
durability layer buys: the same seeded paging workload replays against
:class:`~repro.memservice.ReplicatedMemoryService` instances with
replication factors ``k = 1, 2, 3`` while one fault storm crashes a
hosting node (immediate), reclaims another gracefully (drain-triggered
live migration), kills a third host's replicas outright
(``memservice_kill``), and partitions a fourth off the fabric.

Expected shape — the PR's acceptance bar:

* ``k = 1`` reproduces the seed service's behaviour: replicas destroyed
  by the crash and the kill are simply *gone*, so a slice of pager
  accesses surfaces :class:`~repro.rfaas.errors.DataLossError`.
* ``k >= 2`` completes >= 99 % of accesses with **zero** data loss:
  reads fail over to surviving replicas under checksum/epoch
  verification, migration moves chunks off the drained node before its
  memory disappears, and the repair loop restores the replication
  factor after each hit.  Transient unavailability (a partitioned
  replica set mid-write) is retried with a fixed backoff.

Determinism: the access trace is re-derived from ``seed + 17`` inside
every scenario (each replication factor sees the *identical* trace), the
storm is an explicit plan, the network runs with ``jitter=0.0``, and the
service itself draws no randomness — ``result.to_json()`` is
byte-identical across fresh interpreters for one seed (asserted by
``tests/memservice/test_memdurability_determinism.py``).

Sweep protocol: :func:`scenario` is a pure module-level function of
``(params, seed)``; :func:`plan_scenarios` / :func:`assemble` are
registered as the ``memdurability`` sweep and :func:`run` is the serial
shim over them (``repro memdurability --jobs N`` fans scenarios out).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from ..analysis.tables import render_table
from ..api import ClusterSpec, Platform
from ..faults import FaultPlan
from ..memservice import DurableMemoryConfig, RemotePager
from ..rfaas.errors import DataLossError, MemoryServiceUnavailable
from ..telemetry import NULL_TELEMETRY, telemetry_of
from .base import ScenarioSpec, Sweep, SweepPlan, register_sweep, result_to_json

__all__ = [
    "MemDurabilityPoint",
    "MemDurabilityResult",
    "default_storm",
    "scenario",
    "plan_scenarios",
    "assemble",
    "run",
    "format_report",
    "SWEEP",
]

MiB = 1024**2
GiB = 1024**3

#: Replication factors swept (k=1 is the undurable seed service).
DEFAULT_FACTORS = (1, 2, 3)

#: Nodes hosting chunk replicas (n0000 stays the pager's client node).
HOSTS = ("n0001", "n0002", "n0003", "n0004", "n0005")

#: Retries per access on transient unavailability (partition windows).
ACCESS_RETRIES = 8
RETRY_BACKOFF_S = 0.25


@dataclass(frozen=True)
class MemDurabilityPoint:
    """Outcome of one replication factor under the storm."""

    label: str
    replication: int
    accesses: int
    completed: int
    completion_ratio: float
    data_loss_accesses: int
    retried_accesses: int
    failovers: int
    checksum_failures: int
    stale_reads_averted: int
    degraded_writes: int
    replicas_lost: int
    migrations: int
    repairs: int
    resyncs: int
    moved_mib: float
    faults_injected: int


@dataclass
class MemDurabilityResult:
    points: list[MemDurabilityPoint] = field(default_factory=list)
    window_s: float = 0.0
    seed: int = 0

    def to_dict(self) -> dict:
        return {
            "window_s": self.window_s,
            "seed": self.seed,
            "points": [asdict(p) for p in self.points],
        }

    def to_json(self) -> str:
        return result_to_json(self)

    def format_report(self) -> str:
        rows = []
        for p in self.points:
            rows.append([
                p.label, p.accesses,
                f"{p.completion_ratio * 100:.1f}%",
                p.data_loss_accesses, p.retried_accesses, p.failovers,
                p.stale_reads_averted, p.replicas_lost, p.migrations,
                p.repairs + p.resyncs, f"{p.moved_mib:.1f}",
            ])
        table = render_table(
            ["factor", "accesses", "completed", "lost", "retried", "failovers",
             "stale averted", "replicas lost", "migrated", "repaired", "moved (MiB)"],
            rows,
            title=(f"Memory durability — paging through a crash+drain storm "
                   f"({self.window_s:g}s window)"),
        )
        return table + (
            "\nk=1 is the seed service: destroyed replicas are gone for good."
            " Replication turns the same storm into failovers and repairs."
        )


def default_storm(window_s: float) -> FaultPlan:
    """The crash+drain storm every replication factor replays.

    Explicit victims (stable across factors): one immediate crash of
    ``n0001`` — the group-interleaved layout puts chunk replicas there
    for every factor, so the crash always destroys data — one fabric
    partition (transient unavailability: write fencing, read failover,
    access retries; no data destroyed), one graceful reclaim (the drain
    path — migration runs before memory disappears), and one
    ``memservice_kill`` with a seeded victim.
    """
    return (
        FaultPlan(name="memdurability-storm")
        .node_crash(at_s=0.15 * window_s, node="n0001", immediate=True,
                    duration_s=0.2 * window_s)
        .network_partition(at_s=0.35 * window_s, duration_s=0.08 * window_s,
                           node="n0004")
        .node_crash(at_s=0.55 * window_s, node="n0003", immediate=False,
                    duration_s=0.2 * window_s)
        .memservice_kill(at_s=0.75 * window_s)
    )


def _access_trace(seed: int, accesses: int, size_bytes: int):
    """The pre-generated paging trace (pages, dirty flags).

    Derived from ``seed + 17`` so it is *independent* of the per-factor
    scenario and identical for every replication factor: the workloads
    are the same, only the durability layer differs.
    """
    trace_rng = np.random.default_rng(seed + 17)
    total_pages = size_bytes // (2 * MiB)
    pages = trace_rng.integers(0, total_pages, size=accesses)
    dirty = trace_rng.random(accesses) < 0.5
    return pages, dirty


def _paging_workload(env, pager, pages, dirty, gap: float, counters: dict):
    """Replay the access trace with fixed-backoff retries.

    Module-level (not a ``scenario``-local closure) so scenario
    functions stay picklable; tallies land in ``counters``.
    """
    for i in range(len(pages)):
        yield env.timeout(gap)
        attempt = 0
        while True:
            try:
                yield pager.touch(int(pages[i]), dirty=bool(dirty[i]))
                counters["completed"] += 1
                break
            except DataLossError:
                counters["losses"] += 1
                break
            except MemoryServiceUnavailable:
                attempt += 1
                if attempt > ACCESS_RETRIES:
                    break
                counters["retried"] += 1
                yield env.timeout(RETRY_BACKOFF_S)


def scenario(params: dict, seed: int) -> dict:
    """One durability scenario as a pure function of ``(params, seed)``.

    ``params``: ``replication``, ``window_s``, ``accesses``,
    ``size_bytes``, ``chunk_bytes``.  Returns the
    :class:`MemDurabilityPoint` as a plain dict.
    """
    replication: int = params["replication"]
    window_s: float = params["window_s"]
    accesses: int = params["accesses"]
    size_bytes: int = params["size_bytes"]
    chunk_bytes: int = params["chunk_bytes"]
    pages, dirty = _access_trace(seed, accesses, size_bytes)
    config = DurableMemoryConfig(
        size_bytes=size_bytes, chunk_bytes=chunk_bytes,
        replication=replication, repair_interval_s=0.25, hosts=HOSTS,
    )
    # Join an active TelemetryCollector (the CLI's --metrics-out/--trace)
    # when there is one; otherwise pin a private scope.
    collector_active = telemetry_of(None) is not NULL_TELEMETRY
    platform = Platform.build(
        ClusterSpec(nodes=6, jitter=0.0), seed=seed,
        telemetry=(None if collector_active else True),
        faults=default_storm(window_s), durable_memory=config,
    )
    env = platform.env
    # Register the hosts as executors too, so node_crash events find
    # victims and the graceful reclaim exercises the drain-migration path.
    for name in HOSTS:
        platform.register_node(name, cores=2, memory_bytes=4 * GiB)
    client = platform.memory_client("n0000", user="pager")
    pager = RemotePager(env, client, page_bytes=2 * MiB, resident_pages=4)

    counters = {"completed": 0, "losses": 0, "retried": 0}
    gap = window_s / (accesses + 1)

    platform.process(_paging_workload(env, pager, pages, dirty, gap, counters))
    platform.run_until(window_s + 10.0)
    service = platform.durable_memory
    service.stop()
    platform.run()

    stats = service.stats()
    completed = counters["completed"]
    return asdict(MemDurabilityPoint(
        label=f"k={replication}",
        replication=replication,
        accesses=accesses,
        completed=completed,
        completion_ratio=round(completed / accesses, 6) if accesses else 0.0,
        data_loss_accesses=counters["losses"],
        retried_accesses=counters["retried"],
        failovers=client.failovers,
        checksum_failures=client.checksum_failures,
        stale_reads_averted=client.stale_reads_averted,
        degraded_writes=stats["degraded_writes"],
        replicas_lost=stats["replicas_lost"],
        migrations=stats["migrations"],
        repairs=stats["repairs"],
        resyncs=stats["resyncs"],
        moved_mib=round(stats["moved_bytes"] / MiB, 6),
        faults_injected=len(platform.injector.injected),
    ))


def plan_scenarios(
    factors=DEFAULT_FACTORS,
    window_s: float = 20.0,
    seed: int = 0,
    accesses: int = 400,
    size_bytes: int = 64 * MiB,
    chunk_bytes: int = 16 * MiB,
) -> SweepPlan:
    """Fix the canonical scenario order: one scenario per factor."""
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    if accesses < 1:
        raise ValueError("need at least one access")
    scenarios = tuple(
        ScenarioSpec(
            fn=scenario,
            params={
                "replication": k,
                "window_s": window_s,
                "accesses": accesses,
                "size_bytes": size_bytes,
                "chunk_bytes": chunk_bytes,
            },
            seed=seed,
            label=f"k={k}",
        )
        for k in factors
    )
    return SweepPlan(scenarios=scenarios,
                     meta={"window_s": window_s, "seed": seed})


def assemble(points: list[dict], meta: dict) -> MemDurabilityResult:
    """Rebuild the typed result from point dicts, in plan order."""
    result = MemDurabilityResult(window_s=meta["window_s"], seed=meta["seed"])
    result.points = [MemDurabilityPoint(**point) for point in points]
    return result


def run(
    factors=DEFAULT_FACTORS,
    window_s: float = 20.0,
    seed: int = 0,
    accesses: int = 400,
    size_bytes: int = 64 * MiB,
    chunk_bytes: int = 16 * MiB,
) -> MemDurabilityResult:
    """Serial shim: replay the storm + trace for each replication factor.

    For multi-core execution use :func:`repro.sweep.run_sweep`
    (``repro memdurability --jobs N``).
    """
    return SWEEP.run_serial(
        factors=factors, window_s=window_s, seed=seed, accesses=accesses,
        size_bytes=size_bytes, chunk_bytes=chunk_bytes,
    )


def format_report(result: MemDurabilityResult) -> str:
    return result.format_report()


SWEEP = register_sweep(Sweep(
    name="memdurability",
    description="replicated memory service under a crash+drain storm",
    plan=plan_scenarios,
    assemble=assemble,
    result_type=MemDurabilityResult,
))
