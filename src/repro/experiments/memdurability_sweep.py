"""Memory-durability experiment: remote paging through a crash+drain storm.

The paper's remote-paging use case (Sec. III-C) runs on memory-service
buffers in *ephemeral* node memory — exactly the memory a batch system
reclaims and a node crash destroys.  This sweep quantifies what the
durability layer buys: the same seeded paging workload replays against
:class:`~repro.memservice.ReplicatedMemoryService` instances with
replication factors ``k = 1, 2, 3`` while one fault storm crashes a
hosting node (immediate), reclaims another gracefully (drain-triggered
live migration), kills a third host's replicas outright
(``memservice_kill``), and partitions a fourth off the fabric.

Expected shape — the PR's acceptance bar:

* ``k = 1`` reproduces the seed service's behaviour: replicas destroyed
  by the crash and the kill are simply *gone*, so a slice of pager
  accesses surfaces :class:`~repro.rfaas.errors.DataLossError`.
* ``k >= 2`` completes >= 99 % of accesses with **zero** data loss:
  reads fail over to surviving replicas under checksum/epoch
  verification, migration moves chunks off the drained node before its
  memory disappears, and the repair loop restores the replication
  factor after each hit.  Transient unavailability (a partitioned
  replica set mid-write) is retried with a fixed backoff.

Determinism: the access trace is pre-generated from ``seed + 17``, the
storm is an explicit plan, the network runs with ``jitter=0.0``, and the
service itself draws no randomness — ``result.to_json()`` is
byte-identical across fresh interpreters for one seed (asserted by
``tests/memservice/test_memdurability_determinism.py``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from ..analysis.tables import render_table
from ..api import ClusterSpec, Platform
from ..faults import FaultPlan
from ..memservice import DurableMemoryConfig, RemotePager
from ..rfaas.errors import DataLossError, MemoryServiceUnavailable
from ..telemetry import NULL_TELEMETRY, telemetry_of

__all__ = ["MemDurabilityPoint", "MemDurabilityResult", "default_storm",
           "run", "format_report"]

MiB = 1024**2
GiB = 1024**3

#: Replication factors swept (k=1 is the undurable seed service).
DEFAULT_FACTORS = (1, 2, 3)

#: Nodes hosting chunk replicas (n0000 stays the pager's client node).
HOSTS = ("n0001", "n0002", "n0003", "n0004", "n0005")

#: Retries per access on transient unavailability (partition windows).
ACCESS_RETRIES = 8
RETRY_BACKOFF_S = 0.25


@dataclass(frozen=True)
class MemDurabilityPoint:
    """Outcome of one replication factor under the storm."""

    label: str
    replication: int
    accesses: int
    completed: int
    completion_ratio: float
    data_loss_accesses: int
    retried_accesses: int
    failovers: int
    checksum_failures: int
    stale_reads_averted: int
    degraded_writes: int
    replicas_lost: int
    migrations: int
    repairs: int
    resyncs: int
    moved_mib: float
    faults_injected: int


@dataclass
class MemDurabilityResult:
    points: list[MemDurabilityPoint] = field(default_factory=list)
    window_s: float = 0.0
    seed: int = 0

    def to_dict(self) -> dict:
        return {
            "window_s": self.window_s,
            "seed": self.seed,
            "points": [asdict(p) for p in self.points],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)


def default_storm(window_s: float) -> FaultPlan:
    """The crash+drain storm every replication factor replays.

    Explicit victims (stable across factors): one immediate crash of
    ``n0001`` — the group-interleaved layout puts chunk replicas there
    for every factor, so the crash always destroys data — one fabric
    partition (transient unavailability: write fencing, read failover,
    access retries; no data destroyed), one graceful reclaim (the drain
    path — migration runs before memory disappears), and one
    ``memservice_kill`` with a seeded victim.
    """
    return (
        FaultPlan(name="memdurability-storm")
        .node_crash(at_s=0.15 * window_s, node="n0001", immediate=True,
                    duration_s=0.2 * window_s)
        .network_partition(at_s=0.35 * window_s, duration_s=0.08 * window_s,
                           node="n0004")
        .node_crash(at_s=0.55 * window_s, node="n0003", immediate=False,
                    duration_s=0.2 * window_s)
        .memservice_kill(at_s=0.75 * window_s)
    )


def _scenario(replication: int, window_s: float, seed: int,
              accesses: int, pages: np.ndarray, dirty: np.ndarray,
              size_bytes: int, chunk_bytes: int) -> MemDurabilityPoint:
    config = DurableMemoryConfig(
        size_bytes=size_bytes, chunk_bytes=chunk_bytes,
        replication=replication, repair_interval_s=0.25, hosts=HOSTS,
    )
    # Join an active TelemetryCollector (the CLI's --metrics-out/--trace)
    # when there is one; otherwise pin a private scope.
    collector_active = telemetry_of(None) is not NULL_TELEMETRY
    platform = Platform.build(
        ClusterSpec(nodes=6, jitter=0.0), seed=seed,
        telemetry=(None if collector_active else True),
        faults=default_storm(window_s), durable_memory=config,
    )
    env = platform.env
    # Register the hosts as executors too, so node_crash events find
    # victims and the graceful reclaim exercises the drain-migration path.
    for name in HOSTS:
        platform.register_node(name, cores=2, memory_bytes=4 * GiB)
    client = platform.memory_client("n0000", user="pager")
    pager = RemotePager(env, client, page_bytes=2 * MiB, resident_pages=4)

    completed = 0
    losses = 0
    retried = 0
    gap = window_s / (accesses + 1)

    def workload():
        nonlocal completed, losses, retried
        for i in range(accesses):
            yield env.timeout(gap)
            attempt = 0
            while True:
                try:
                    yield pager.touch(int(pages[i]), dirty=bool(dirty[i]))
                    completed += 1
                    break
                except DataLossError:
                    losses += 1
                    break
                except MemoryServiceUnavailable:
                    attempt += 1
                    if attempt > ACCESS_RETRIES:
                        break
                    retried += 1
                    yield env.timeout(RETRY_BACKOFF_S)

    platform.process(workload())
    platform.run_until(window_s + 10.0)
    service = platform.durable_memory
    service.stop()
    platform.run()

    stats = service.stats()
    return MemDurabilityPoint(
        label=f"k={replication}",
        replication=replication,
        accesses=accesses,
        completed=completed,
        completion_ratio=round(completed / accesses, 6) if accesses else 0.0,
        data_loss_accesses=losses,
        retried_accesses=retried,
        failovers=client.failovers,
        checksum_failures=client.checksum_failures,
        stale_reads_averted=client.stale_reads_averted,
        degraded_writes=stats["degraded_writes"],
        replicas_lost=stats["replicas_lost"],
        migrations=stats["migrations"],
        repairs=stats["repairs"],
        resyncs=stats["resyncs"],
        moved_mib=round(stats["moved_bytes"] / MiB, 6),
        faults_injected=len(platform.injector.injected),
    )


def run(
    factors=DEFAULT_FACTORS,
    window_s: float = 20.0,
    seed: int = 0,
    accesses: int = 400,
    size_bytes: int = 64 * MiB,
    chunk_bytes: int = 16 * MiB,
) -> MemDurabilityResult:
    """Replay the storm + paging trace for each replication factor."""
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    if accesses < 1:
        raise ValueError("need at least one access")
    # One pre-generated trace shared by every factor: the workloads are
    # identical, only the durability layer differs.
    trace_rng = np.random.default_rng(seed + 17)
    total_pages = size_bytes // (2 * MiB)
    pages = trace_rng.integers(0, total_pages, size=accesses)
    dirty = trace_rng.random(accesses) < 0.5
    result = MemDurabilityResult(window_s=window_s, seed=seed)
    for k in factors:
        result.points.append(
            _scenario(k, window_s, seed, accesses, pages, dirty,
                      size_bytes, chunk_bytes)
        )
    return result


def format_report(result: MemDurabilityResult) -> str:
    rows = []
    for p in result.points:
        rows.append([
            p.label, p.accesses,
            f"{p.completion_ratio * 100:.1f}%",
            p.data_loss_accesses, p.retried_accesses, p.failovers,
            p.stale_reads_averted, p.replicas_lost, p.migrations,
            p.repairs + p.resyncs, f"{p.moved_mib:.1f}",
        ])
    table = render_table(
        ["factor", "accesses", "completed", "lost", "retried", "failovers",
         "stale averted", "replicas lost", "migrated", "repaired", "moved (MiB)"],
        rows,
        title=(f"Memory durability — paging through a crash+drain storm "
               f"({result.window_s:g}s window)"),
    )
    return table + (
        "\nk=1 is the seed service: destroyed replicas are gone for good."
        " Replication turns the same storm into failovers and repairs."
    )
