"""The sweep experiment protocol: scenarios as pure functions of data.

Every sweep in this repo has the same shape — a list of *scenarios*
(one fault rate, one load multiplier, one replication factor), each
fully determined by a parameter dict and a seed, whose outcomes are
merged in a fixed order into a result object the CLI can print and
serialize.  This module names that shape so one runner
(:mod:`repro.sweep`) can execute *any* sweep, serially or fanned out
across a process pool, with byte-identical output either way:

* :class:`ScenarioSpec` — one unit of sweep work: a **module-level**
  callable ``fn(params, seed) -> point dict`` plus its (picklable)
  parameters and an explicit seed.  Everything a worker process needs
  crosses the pool boundary inside the spec; nothing is captured from
  the parent's state.  Seeds are assigned at *plan* time in the parent,
  following the :meth:`repro.api.Platform.build` rng-fan-out discipline
  (one base seed, derived deterministically per component), so neither
  worker identity nor execution order can influence a scenario.
* :class:`SweepPlan` — the canonical scenario order plus the run-level
  metadata (``window_s``, ``seed``, ...) the assembler needs.  The plan
  *is* the merge contract: points are always assembled in plan order,
  no matter which worker finished first.
* :class:`SweepResult` — the protocol every sweep's result object
  satisfies: ``points`` plus ``to_dict()`` / ``to_json()`` /
  ``format_report()``.  ``tools/check_sweeps.py`` lints the registry
  against it.
* :class:`Sweep` + :func:`register_sweep` — the registry consumed by
  both the CLI (``repro chaos --jobs 8``, ``repro sweep <name>``) and
  :func:`repro.sweep.run_sweep`.

The legacy per-module ``run(...)`` entry points survive as thin shims:
``plan_scenarios(...)`` → execute serially → ``assemble(...)``, the
exact code path the parallel runner uses at ``jobs=1``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Protocol,
    Tuple,
    runtime_checkable,
)

__all__ = [
    "ScenarioSpec",
    "SweepPlan",
    "SweepResult",
    "Sweep",
    "register_sweep",
    "get_sweep",
    "registered_sweeps",
    "result_to_json",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One unit of sweep work: ``fn(params, seed) -> point dict``.

    ``fn`` must be a module-level callable and ``params`` a dict of
    picklable values — the spec is what crosses the process-pool
    boundary, so closures and locally-defined functions are rejected by
    the ``sweeps`` lint (``tools/check_sweeps.py``).  ``label`` names
    the scenario in reports and error messages.
    """

    fn: Callable[[Dict[str, Any], int], Dict[str, Any]]
    params: Dict[str, Any]
    seed: int
    label: str

    def execute(self) -> Dict[str, Any]:
        """Run the scenario in this process; returns its point dict."""
        return self.fn(self.params, self.seed)


@dataclass(frozen=True)
class SweepPlan:
    """The canonical scenario order plus run-level assembler metadata."""

    scenarios: Tuple[ScenarioSpec, ...]
    meta: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.scenarios)


@runtime_checkable
class SweepResult(Protocol):
    """What every sweep's result object exposes (plus a ``points`` list).

    ``points`` is a data attribute, which :func:`isinstance` cannot see
    through a runtime protocol; the ``sweeps`` lint checks it explicitly
    on each registered result type.
    """

    def to_dict(self) -> dict: ...

    def to_json(self) -> str: ...

    def format_report(self) -> str: ...


def result_to_json(result: Any) -> str:
    """The repo-wide sweep JSON convention: sorted keys, 2-space indent."""
    return json.dumps(result.to_dict(), sort_keys=True, indent=2)


@dataclass(frozen=True)
class Sweep:
    """A registered sweep: how to plan scenarios and assemble points.

    ``plan(**kwargs) -> SweepPlan`` validates the run arguments and
    fixes the canonical scenario order (and every per-scenario seed);
    ``assemble(points, meta) -> SweepResult`` rebuilds the typed result
    from the point dicts, in plan order.  ``result_type`` is the
    concrete result class, under the :class:`SweepResult` contract.
    """

    name: str
    description: str
    plan: Callable[..., SweepPlan]
    assemble: Callable[[List[Dict[str, Any]], Mapping[str, Any]], Any]
    result_type: type

    def run_serial(self, **kwargs) -> Any:
        """Plan + execute in-process + assemble — the ``jobs=1`` path."""
        plan = self.plan(**kwargs)
        points = [spec.execute() for spec in plan.scenarios]
        return self.assemble(points, plan.meta)


#: name -> Sweep, populated by each sweep module at import time.
_REGISTRY: Dict[str, Sweep] = {}


def register_sweep(sweep: Sweep) -> Sweep:
    """Register ``sweep`` (idempotent per name; returns it for assignment)."""
    existing = _REGISTRY.get(sweep.name)
    if existing is not None and existing is not sweep:
        raise ValueError(f"sweep {sweep.name!r} is already registered")
    _REGISTRY[sweep.name] = sweep
    return sweep


def get_sweep(name: str) -> Sweep:
    """The registered sweep, or a KeyError naming what *is* registered."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep {name!r} (registered: {', '.join(sorted(_REGISTRY))})"
        ) from None


def registered_sweeps() -> Dict[str, Sweep]:
    """A snapshot of the registry (name -> Sweep), insertion-ordered."""
    return dict(_REGISTRY)
