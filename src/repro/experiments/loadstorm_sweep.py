"""The load storm: a million-client lease churn vs control-plane shards.

One seeded :class:`~repro.loadgen.WorkloadTrace` — open-loop arrivals
from a 1.2M-tenant Zipf population — is replayed against
:class:`~repro.shard.ShardedControlPlane` instances of increasing shard
count.  Every arrival runs the full multi-tenant path: per-tenant
admission control (:mod:`repro.capacity`), a batched grant on the
tenant's home shard, a service-time hold, and a batched release, with
bounded deterministic retries when the shard is saturated or down.

Because the driver is open loop, a saturated single shard cannot slow
the offered load down — the excess shows up where it belongs, as grant
tail latency (and, past the retry budget, as *degraded* requests).
Expected shape: one shard runs at or past its serialization ceiling
(``max_batch / (batch_overhead_s + per_op_s * max_batch)`` ops/s), so
p99 grant latency collapses as shards double and throughput recovers to
the admitted rate.

The no-silent-drops invariant is enforced globally at every point:

* **request conservation** — every arrival ends in exactly one of
  ``completed`` / ``rejected`` (admission backpressure) / ``degraded``
  (retry budget exhausted): ``admitted == completed + rejected +
  degraded``;
* **plane conservation** — every batched op is applied or failed, and
  every lease ever granted ends released or revoked
  (:meth:`~repro.shard.ShardedControlPlane.conservation_ok`).

Sweep protocol: :func:`scenario` is a pure module-level function of
``(params, seed)``; all points share one seed so the trace is identical
at every shard count, and ``repro loadstorm --jobs N`` is byte-identical
to the serial run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from ..analysis.tables import render_table
from ..capacity.admission import AdmissionConfig, AdmissionController, TenantQuota
from ..cluster.machine import Cluster
from ..cluster.specs import DAINT_MC
from ..cluster.topology import DragonflyTopology
from ..faults import FaultPlan, Injector
from ..loadgen import LoadSpec, MmppArrivals, PoissonArrivals, TenantMix, synthesize
from ..rfaas.errors import (
    AdmissionRejected,
    ManagerUnavailableError,
    NoCapacityError,
    StaleEpochError,
)
from ..shard import ShardConfig, ShardedControlPlane
from ..sim.engine import Environment
from ..telemetry import NULL_TELEMETRY, Telemetry, telemetry_of
from .base import ScenarioSpec, Sweep, SweepPlan, register_sweep, result_to_json

__all__ = [
    "LoadstormPoint",
    "LoadstormResult",
    "scenario",
    "plan_scenarios",
    "assemble",
    "run",
    "format_report",
    "SWEEP",
]

GiB = 1024**3

#: Shard counts swept by default: the serialization-point strawman up
#: to a comfortably horizontal plane.
DEFAULT_SHARDS = (1, 2, 4, 8)

#: Deterministic retry ladder for grants against a saturated/down shard
#: (no jitter — byte-identity across workers requires it).
RETRY_ATTEMPTS = 6
RETRY_BACKOFF_S = 0.02
RETRY_BACKOFF_CAP_S = 0.64

#: Shard serialization cost model: one flush pays
#: ``BATCH_OVERHEAD_S + PER_OP_S * ops``, so a full batch caps one
#: shard at ~2300 ops/s — two control-plane ops per request puts the
#: default storm past a single shard's ceiling by design.
BATCH_OVERHEAD_S = 1e-3
PER_OP_S = 4e-4


@dataclass(frozen=True)
class LoadstormPoint:
    """Outcome of one shard count against the shared trace."""

    label: str
    shards: int
    population: int
    admitted: int          # arrivals that entered the system (the trace)
    completed: int
    rejected: int          # admission backpressure (explicit, counted)
    degraded: int          # grant retry budget exhausted
    throughput_rps: float  # completions per offered-window second
    p50_ms: float          # arrival -> grant, completed requests
    p99_ms: float
    batches: int
    mean_batch_ops: float
    migrations: int
    crashes: int
    conservation_ok: bool

    @property
    def completion_ratio(self) -> float:
        return self.completed / self.admitted if self.admitted else 0.0


@dataclass
class LoadstormResult:
    points: list[LoadstormPoint] = field(default_factory=list)
    window_s: float = 0.0
    rate_per_s: float = 0.0
    population: int = 0
    seed: int = 0

    def to_dict(self) -> dict:
        return {
            "window_s": self.window_s,
            "rate_per_s": self.rate_per_s,
            "population": self.population,
            "seed": self.seed,
            "points": [asdict(p) for p in self.points],
        }

    def to_json(self) -> str:
        return result_to_json(self)

    def format_report(self) -> str:
        rows = []
        for p in self.points:
            rows.append([
                p.label, p.admitted, p.completed, p.rejected, p.degraded,
                f"{p.throughput_rps:.0f}",
                f"{p.p50_ms:.2f}", f"{p.p99_ms:.2f}",
                p.batches, f"{p.mean_batch_ops:.1f}", p.migrations,
                "PASS" if p.conservation_ok else "FAIL",
            ])
        table = render_table(
            ["shards", "admitted", "completed", "rejected", "degraded",
             "thr (req/s)", "p50 (ms)", "p99 (ms)", "batches", "ops/batch",
             "migrations", "conserved"],
            rows,
            title=(f"Load storm — {self.population:,} clients, "
                   f"{self.rate_per_s:g} req/s open loop over "
                   f"{self.window_s:g}s, vs control-plane shards"),
        )
        return table + (
            "\nOne shard is a serialization point: the open-loop storm piles"
            " up in its batch queue as tail latency.  Sharding the plane"
            " spreads tenants by consistent hash; p99 collapses while the"
            " conservation ledger (admitted = completed + rejected +"
            " degraded, every op applied or failed) holds at every point."
        )


def _arrival_handler(env, plane, admission, tenant: str, at_s: float,
                     service_s: float, census: dict, latencies: list):
    """One open-loop request: admit -> grant (with retries) -> hold -> release."""
    try:
        yield from admission.admit(tenant)
    except AdmissionRejected:
        census["rejected"] += 1
        return
    lease = None
    for attempt in range(RETRY_ATTEMPTS):
        try:
            lease, _executor = yield plane.request_grant(tenant, cores=1)
            break
        except (NoCapacityError, ManagerUnavailableError, StaleEpochError):
            if attempt == RETRY_ATTEMPTS - 1:
                break
            yield env.timeout(
                min(RETRY_BACKOFF_S * 2**attempt, RETRY_BACKOFF_CAP_S)
            )
    if lease is None:
        census["degraded"] += 1
        return
    latencies.append(env.now - at_s)
    yield env.timeout(service_s)
    if lease.active:
        try:
            yield plane.request_release(lease)
        except (ManagerUnavailableError, StaleEpochError):
            pass  # shard died holding our release; crash fencing revokes
    # A lease revoked under us (shard crash fencing) still did its
    # work — the hold finished — so the request counts completed, and
    # the plane ledger records the lease as revoked, not dropped.
    census["completed"] += 1


def _replay(env, plane, admission, trace, mix: TenantMix, census, latencies):
    """Walk the trace in arrival order, spawning one handler per arrival."""
    for at_s, tenant_index in zip(trace.times, trace.tenants):
        delay = at_s - env.now
        if delay > 0:
            yield env.timeout(delay)
        env.process(_arrival_handler(
            env, plane, admission, mix.name(tenant_index), at_s,
            trace.service_s, census, latencies,
        ))


def scenario(params: dict, seed: int) -> dict:
    """One shard count as a pure function of ``(params, seed)``."""
    shards: int = params["shards"]
    window_s: float = params["window_s"]
    rate_per_s: float = params["rate_per_s"]
    population: int = params["population"]
    zipf_s: float = params["zipf_s"]
    service_s: float = params["service_s"]
    arrival: str = params["arrival"]
    nodes: int = params["nodes"]
    cores_per_node: int = params["cores_per_node"]
    max_batch: int = params["max_batch"]
    crash_at_frac: float = params["crash_at_frac"]

    if arrival == "mmpp":
        arrivals = MmppArrivals(
            rates_per_s=(0.2 * rate_per_s, 2.0 * rate_per_s), mean_dwell_s=1.0,
        )
    elif arrival == "poisson":
        arrivals = PoissonArrivals(rate_per_s=rate_per_s)
    else:
        raise ValueError(f"unknown arrival kind {arrival!r} ('poisson' or 'mmpp')")
    mix = TenantMix(population=population, zipf_s=zipf_s)
    trace = synthesize(LoadSpec(
        arrivals=arrivals, mix=mix, window_s=window_s,
        service_s=service_s, seed=seed,
    ))

    env = Environment()
    if telemetry_of(None) is NULL_TELEMETRY:
        # No active collector: pin a fresh registry so metrics/spans
        # exist for the report (mirrors Platform.build's resolution).
        Telemetry(env=env).install(env)
    cluster = Cluster(topology=DragonflyTopology(nodes_per_group=2))
    cluster.add_nodes("n", nodes, DAINT_MC)
    plane = ShardedControlPlane(
        env, cluster,
        ShardConfig(shards=shards, max_batch=max_batch,
                    batch_overhead_s=BATCH_OVERHEAD_S, per_op_s=PER_OP_S,
                    rebalance_interval_s=0.25),
        rng=np.random.default_rng(seed + 1),
    )
    for i in range(nodes):
        plane.register_node(f"n{i:04d}", cores=cores_per_node,
                            memory_bytes=4 * GiB)
    admission = AdmissionController(env, AdmissionConfig(
        max_queue_depth=512,
        max_queue_wait_s=0.5,
        # The quota clips the Zipf head to roughly what one shard's
        # nodes can hold: the heaviest tenants feel admission control,
        # everyone else passes, and hot-shard capacity stays bounded so
        # the shard-saturation signal dominates the curve.
        default_quota=TenantQuota(rate_per_s=0.08 * rate_per_s,
                                  burst=max(1.0, 0.02 * rate_per_s)),
    ))

    injector = None
    if crash_at_frac > 0:
        # Shard-targeted crash through the fault layer: kill the highest
        # shard mid-storm, restarting after 10% of the window.
        plan = FaultPlan(name="loadstorm").manager_crash(
            at_s=crash_at_frac * window_s, duration_s=0.1 * window_s,
            shard=shards - 1,
        )
        injector = Injector(env, plan, manager=plane,
                            rng=np.random.default_rng(seed + 2))
        injector.start()

    census = {"completed": 0, "rejected": 0, "degraded": 0}
    latencies: list[float] = []
    env.process(_replay(env, plane, admission, trace, mix, census, latencies),
                name="loadstorm-replay")
    # Adaptive drain: under deep 1-shard saturation the batch backlog
    # can take tens of sim-seconds to clear, and conservation demands
    # every arrival be accounted for before the plane stops.  Handlers
    # cannot stall forever (admission waits, retries, service, and
    # batch flushes are all bounded), so this always terminates.
    deadline = window_s + 20.0
    env.run(until=deadline)
    while sum(census.values()) < len(trace) and deadline < window_s + 600.0:
        deadline += 20.0
        env.run(until=deadline)
    plane.stop()
    env.run()

    ledger = plane.conservation()
    admitted = len(trace)
    conserved = (
        admitted == census["completed"] + census["rejected"] + census["degraded"]
        and plane.conservation_ok(drained=True)
    )
    p50 = float(np.median(latencies)) if latencies else float("nan")
    p99 = float(np.percentile(latencies, 99)) if latencies else float("nan")
    batches = sum(s.batcher.batches for s in plane.shards)
    applied = ledger["ops_applied"] + ledger["ops_failed"]
    return asdict(LoadstormPoint(
        label=f"shards={shards}",
        shards=shards,
        population=population,
        admitted=admitted,
        completed=census["completed"],
        rejected=census["rejected"],
        degraded=census["degraded"],
        throughput_rps=census["completed"] / window_s,
        p50_ms=p50 * 1e3,
        p99_ms=p99 * 1e3,
        batches=batches,
        mean_batch_ops=(applied / batches) if batches else 0.0,
        migrations=ledger["migrations"],
        crashes=len(injector.injected) if injector is not None else 0,
        conservation_ok=conserved,
    ))


def plan_scenarios(
    shards=DEFAULT_SHARDS,
    window_s: float = 8.0,
    rate_per_s: float = 3000.0,
    population: int = 1_200_000,
    zipf_s: float = 1.1,
    service_s: float = 0.05,
    arrival: str = "poisson",
    nodes: int = 16,
    cores_per_node: int = 24,
    max_batch: int = 32,
    crash_at_frac: float = 0.0,
    seed: int = 0,
) -> SweepPlan:
    """Fix the canonical scenario order; one seed -> one shared trace."""
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    if arrival not in ("poisson", "mmpp"):
        raise ValueError("arrival must be 'poisson' or 'mmpp'")
    scenarios = tuple(
        ScenarioSpec(
            fn=scenario,
            params={
                "shards": n,
                "window_s": window_s,
                "rate_per_s": rate_per_s,
                "population": population,
                "zipf_s": zipf_s,
                "service_s": service_s,
                "arrival": arrival,
                "nodes": nodes,
                "cores_per_node": cores_per_node,
                "max_batch": max_batch,
                "crash_at_frac": crash_at_frac,
            },
            seed=seed,
            label=f"shards={n}",
        )
        for n in shards
    )
    return SweepPlan(scenarios=scenarios, meta={
        "window_s": window_s, "rate_per_s": rate_per_s,
        "population": population, "seed": seed,
    })


def assemble(points: list[dict], meta: dict) -> LoadstormResult:
    """Rebuild the typed result from point dicts, in plan order."""
    result = LoadstormResult(
        window_s=meta["window_s"], rate_per_s=meta["rate_per_s"],
        population=meta["population"], seed=meta["seed"],
    )
    result.points = [LoadstormPoint(**point) for point in points]
    return result


def run(
    shards=DEFAULT_SHARDS,
    window_s: float = 8.0,
    rate_per_s: float = 3000.0,
    population: int = 1_200_000,
    zipf_s: float = 1.1,
    service_s: float = 0.05,
    arrival: str = "poisson",
    nodes: int = 16,
    cores_per_node: int = 24,
    max_batch: int = 32,
    crash_at_frac: float = 0.0,
    seed: int = 0,
) -> LoadstormResult:
    """Serial shim over the sweep protocol (``repro loadstorm``)."""
    return SWEEP.run_serial(
        shards=shards, window_s=window_s, rate_per_s=rate_per_s,
        population=population, zipf_s=zipf_s, service_s=service_s, arrival=arrival,
        nodes=nodes, cores_per_node=cores_per_node, max_batch=max_batch,
        crash_at_frac=crash_at_frac, seed=seed,
    )


def format_report(result: LoadstormResult) -> str:
    return result.format_report()


SWEEP = register_sweep(Sweep(
    name="loadstorm",
    description="open-loop million-client lease churn vs control-plane shards",
    plan=plan_scenarios,
    assemble=assemble,
    result_type=LoadstormResult,
))
