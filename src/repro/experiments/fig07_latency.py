"""Experiment Fig. 7: invocation round-trip latency vs. message size.

Measures the simulated rFaaS invocation RTT for a no-op function with
*hot* (busy-polling) and *warm* (event-driven) executors against the raw
fabric round trip (the libfabric baseline), reporting median and 95th
percentile per payload size — the exact series of the paper's Fig. 7.

Expected shape: hot executors track the fabric baseline within a small
constant, warm executors pay tens of microseconds of wakeup latency,
and every curve converges to bandwidth-bound behaviour for large
payloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.tables import render_table
from ..api import ClusterSpec, Platform
from ..containers import Image
from ..interference import ResourceDemand
from ..rfaas import ExecutorMode

__all__ = ["LatencyPoint", "Fig07Result", "run", "format_report"]

MiB = 1024**2

DEFAULT_SIZES = (1, 64, 1024, 16 * 1024, 256 * 1024, 1 * MiB)


@dataclass(frozen=True)
class LatencyPoint:
    size_bytes: int
    median_s: float
    p95_s: float


@dataclass
class Fig07Result:
    hot: list[LatencyPoint]
    warm: list[LatencyPoint]
    fabric: list[LatencyPoint]
    samples: int


def _percentiles(values: list[float]) -> tuple[float, float]:
    arr = np.asarray(values)
    return float(np.median(arr)), float(np.percentile(arr, 95))


def _rfaas_sweep(mode: str, sizes, samples: int, seed: int) -> list[LatencyPoint]:
    platform = Platform.build(ClusterSpec(nodes=2), seed=seed)
    env = platform.env
    platform.register_node("n0001", cores=2, memory_bytes=8 * 1024**3, mode=mode)
    image = Image("noop", size_bytes=50 * MiB)
    platform.functions.register(
        "noop", image, runtime_s=0.0,
        demand=ResourceDemand(cores=1, membw=0.0, frac_membw=0.0),
        output_bytes=1,
    )
    client = platform.client("n0000")
    measurements: dict[int, list[float]] = {size: [] for size in sizes}

    def bench():
        # One untimed warmup invocation walks the full cold path (so a
        # trace of this experiment decomposes cold start alongside the
        # hot/warm steady state); measured invocations then hit the
        # attached container, as in the paper's steady-state runs.
        warmup = yield client.invoke("noop", payload_bytes=1)
        assert warmup.ok
        for size in sizes:
            for _ in range(samples):
                t0 = env.now
                result = yield client.invoke("noop", payload_bytes=size)
                assert result.ok
                measurements[size].append(env.now - t0)

    platform.process(bench())
    platform.run()
    return [LatencyPoint(size, *_percentiles(measurements[size])) for size in sizes]


def _fabric_sweep(sizes, samples: int, seed: int) -> list[LatencyPoint]:
    platform = Platform.build(ClusterSpec(nodes=2), seed=seed)
    env = platform.env
    cred = platform.drc.acquire("bench")
    platform.drc.grant(cred.cred_id, "bench", "bench")
    fabric = platform.fabric
    measurements: dict[int, list[float]] = {size: [] for size in sizes}

    def bench():
        conn = yield fabric.connect("n0000", "n0001", user="bench", cred_id=cred.cred_id)
        for size in sizes:
            for _ in range(samples):
                t0 = env.now
                yield conn.send(size)
                yield conn.recv_response(1)
                measurements[size].append(env.now - t0)

    platform.process(bench())
    platform.run()
    return [LatencyPoint(size, *_percentiles(measurements[size])) for size in sizes]


def run(sizes=DEFAULT_SIZES, samples: int = 200, seed: int = 0) -> Fig07Result:
    if samples < 2:
        raise ValueError("need >= 2 samples per size")
    return Fig07Result(
        hot=_rfaas_sweep(ExecutorMode.HOT, sizes, samples, seed),
        warm=_rfaas_sweep(ExecutorMode.WARM, sizes, samples, seed),
        fabric=_fabric_sweep(sizes, samples, seed),
        samples=samples,
    )


def format_report(result: Fig07Result) -> str:
    rows = []
    for hot, warm, fab in zip(result.hot, result.warm, result.fabric):
        rows.append([
            hot.size_bytes,
            fab.median_s * 1e6, fab.p95_s * 1e6,
            hot.median_s * 1e6, hot.p95_s * 1e6,
            warm.median_s * 1e6, warm.p95_s * 1e6,
        ])
    table = render_table(
        ["size (B)", "fabric p50 (us)", "fabric p95", "hot p50", "hot p95",
         "warm p50", "warm p95"],
        rows,
        title=f"Fig. 7 — invocation RTT vs payload ({result.samples} samples/point)",
    )
    return table + (
        "\nPaper: hot executors within a few us of libfabric; warm pay"
        " tens of us of wakeup latency; single-digit us small-message RTT."
    )
