"""Experiment Fig. 13: accelerating real applications with rFaaS offloading.

The live counterpart of the paper's integration study: Black-Scholes
(PARSEC-style, Fig. 13a) and a Monte Carlo particle-transport mini-app
(OpenMC opr stand-in, Fig. 13b/c) are executed four ways:

* **serial** — one in-process loop: the single-threaded baseline
  (Python's GIL makes in-process threads a dishonest stand-in for OpenMP
  threads, so the local side is one worker by construction);
* **remote** — complete remote execution: every chunk shipped to the
  process-based runtime (N warm executors), paying serialization — the
  paper's "complete remote execution with rFaaS";
* **doubled** — the paper's headline configuration: the local worker
  keeps computing while N remote executors absorb the overflow, split by
  the Eq.-1 model so the application never waits.

Expected shape: remote ≈ Nx over serial for compute-heavy chunks (less
when payload transfer dominates — the network-saturation regime);
doubled beats both by adding the free remote resources to local work.

Because measured wall-clock parallelism is bounded by the host's physical
cores (a 1-core CI container cannot show *any* speedup), every result
also carries the Eq.-1 model's *predicted* speedup computed from the
measured T_local / T_inv / payload size; on an unconstrained host the
measured value approaches the prediction.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..analysis.tables import render_table
from ..local import LocalRuntime, payload_nbytes
from ..offload import OffloadModel, calibrate_model
from ..workloads import generate_options, price_chunk, split_batch, transport_chunk

__all__ = ["VariantTiming", "Fig13Result", "run_app", "run", "format_report"]


@dataclass(frozen=True)
class VariantTiming:
    variant: str
    wall_s: float
    speedup_vs_serial: float


@dataclass
class Fig13Result:
    app: str
    workers: int
    chunks: int
    payload_bytes: int
    timings: list[VariantTiming] = field(default_factory=list)
    model: OffloadModel = None
    checks_passed: bool = True
    predicted_doubled_speedup: float = 1.0
    host_cores: int = 1

    def timing(self, variant: str) -> VariantTiming:
        for t in self.timings:
            if t.variant == variant:
                return t
        raise KeyError(variant)


def _close_enough(a, b) -> bool:
    import numpy as np

    if isinstance(a, dict):
        return all(_close_enough(a[k], b[k]) for k in a)
    return bool(np.allclose(a, b))


def run_app(
    app: str,
    runtime: LocalRuntime,
    function: str,
    local_fn: Callable,
    payloads: Sequence,
    workers: int,
    **kwargs,
) -> Fig13Result:
    """Time the four execution variants of one application."""
    runtime.prewarm()
    model = calibrate_model(runtime, function, local_fn, payloads[0], **kwargs)

    # Serial baseline (the one local worker running everything).
    t0 = time.perf_counter()
    serial_results = [local_fn(p, **kwargs) for p in payloads]
    serial_s = time.perf_counter() - t0

    # Remote: everything through the warm process executors.
    t0 = time.perf_counter()
    remote_results = runtime.map(function, list(payloads), **kwargs)
    remote_s = time.perf_counter() - t0

    # Doubled: 1 local worker + N remote executors, Eq.-1 split.
    # Remote chunks are submitted first so their latency hides behind
    # the local compute (never-wait principle).
    plan = model.split(len(payloads), local_workers=1, remote_workers=workers)
    t0 = time.perf_counter()
    futures = [runtime.invoke(function, p, **kwargs) for p in payloads[plan.n_local:]]
    doubled_local = [local_fn(p, **kwargs) for p in payloads[: plan.n_local]]
    doubled_results = doubled_local + [f.result() for f in futures]
    doubled_s = time.perf_counter() - t0

    checks = all(
        _close_enough(serial_results[i], variant[i])
        for variant in (remote_results, doubled_results)
        for i in range(len(serial_results))
    )
    result = Fig13Result(
        app=app, workers=workers, chunks=len(payloads),
        payload_bytes=payload_nbytes(payloads[0]),
        model=model, checks_passed=checks,
        predicted_doubled_speedup=model.speedup(
            len(payloads), local_workers=1, remote_workers=workers
        ),
        host_cores=os.cpu_count() or 1,
    )
    for name, wall in (
        ("serial", serial_s), ("remote", remote_s), ("doubled", doubled_s),
    ):
        result.timings.append(
            VariantTiming(name, wall, serial_s / wall if wall > 0 else 1.0)
        )
    return result


def run(
    workers: int = 2,
    options: int = 2_000_000,
    iterations: int = 4,
    particles: tuple[int, int] = (10_000, 40_000),
    seed: int = 0,
) -> list[Fig13Result]:
    """Run Fig. 13a (Black-Scholes) and Fig. 13b/c (transport)."""
    results = []
    with LocalRuntime(workers=workers) as runtime:
        runtime.register("price", "repro.workloads.blackscholes:price_chunk")
        runtime.register("transport", "repro.workloads.openmc_like:transport_chunk")

        batch = generate_options(options, seed=seed)
        payloads = split_batch(batch, (workers + 1) * 6)
        results.append(
            run_app("blackscholes", runtime, "price", price_chunk,
                    payloads, workers, iterations=iterations)
        )
        for count in particles:
            chunk = max(500, count // ((workers + 1) * 6))
            payloads = [
                {"particles": chunk, "seed": seed + i}
                for i in range(max(1, count // chunk))
            ]
            results.append(
                run_app(f"openmc-{count}p", runtime, "transport", transport_chunk,
                        payloads, workers)
            )
    return results


def saturation_sweep(
    model: OffloadModel,
    remote_workers=(1, 2, 4, 8, 16, 32, 64),
    n_tasks: int = 512,
    link_invocations_per_s: Optional[float] = None,
) -> list[tuple[int, float, float]]:
    """The Fig.-13a knee: speedup vs remote workers until the link saturates.

    Applies the *measured* compute model (T_local, T_inv) to a
    bandwidth-constrained link sustaining ``link_invocations_per_s``
    payload transfers per second — the paper's testbed regime, where a
    229 MB input shared one Aries injection port.  Returns (workers,
    predicted speedup, remote fraction) rows; beyond the saturation point
    extra executors stop helping because the link, not the pool, is the
    bottleneck.
    """
    if link_invocations_per_s is None:
        # Default: the link sustains what ~8 executors can consume, so
        # the knee falls inside the sweep range (as on the testbed, where
        # payload transfer competed with a handful of executors).
        link_invocations_per_s = 8.0 / model.t_inv
    if link_invocations_per_s <= 0:
        raise ValueError("link rate must be positive")
    from dataclasses import replace as _replace

    constrained = _replace(
        model, bandwidth=link_invocations_per_s * model.data_per_task
    )
    rows = []
    for workers in remote_workers:
        plan = constrained.split(n_tasks, local_workers=1, remote_workers=workers)
        speedup = constrained.speedup(n_tasks, local_workers=1, remote_workers=workers)
        rows.append((workers, speedup, plan.n_remote / n_tasks))
    return rows


def format_saturation(model: OffloadModel, rows) -> str:
    from ..analysis.tables import render_table

    table = render_table(
        ["remote workers", "predicted speedup", "remote fraction"],
        [[w, f"{s:.2f}x", f"{f * 100:.0f}%"] for w, s, f in rows],
        title=(
            "Fig. 13a saturation sweep — measured compute model on a"
            " bandwidth-constrained link"
        ),
    )
    return table + (
        "\nSpeedup plateaus once the link rate, not the executor pool,"
        " bounds the remote stream (the paper's network-saturation point)."
    )


def format_report(results: list[Fig13Result]) -> str:
    blocks = []
    for result in results:
        rows = [
            [t.variant, t.wall_s * 1e3, f"{t.speedup_vs_serial:.2f}x"]
            for t in result.timings
        ]
        table = render_table(
            ["variant", "wall (ms)", "speedup"],
            rows,
            title=(
                f"Fig. 13 — {result.app}: {result.chunks} chunks,"
                f" 1 local + {result.workers} remote workers,"
                f" payload {result.payload_bytes / 1024:.0f} KiB"
                f" (results verified: {result.checks_passed})"
            ),
        )
        eq1 = (
            f"Eq. 1: T_local={result.model.t_local * 1e3:.2f} ms,"
            f" T_inv={result.model.t_inv * 1e3:.2f} ms,"
            f" N_local_min={result.model.n_local_min};"
            f" predicted doubled speedup {result.predicted_doubled_speedup:.2f}x"
            f" on >= {result.workers + 1} free cores"
            f" (host has {result.host_cores})"
        )
        blocks.append(table + "\n" + eq1)
    note = ""
    if results and results[0].host_cores <= results[0].workers:
        note = (
            "\nNOTE: this host has fewer cores than workers — measured"
            " wall-clock speedup is physically capped near 1x; compare"
            " the predicted values instead."
        )
    return "\n\n".join(blocks) + note + (
        "\nPaper: offloading to doubled (cheap serverless) resources beats"
        " the OpenMP baseline until network saturation."
    )
