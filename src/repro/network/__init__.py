"""Network substrate: LogGP model, fabric providers, RDMA transport, DRC."""

from .drc import Credential, DrcError, DrcManager
from .fabric import EFA, IBVERBS, PROVIDERS, TCP, UGNI, FabricProvider
from .logp import LogGPParams, fit_loggp
from .transport import (
    Connection,
    LinkConditioner,
    NetworkFabric,
    TransferDropped,
    TransferStats,
)

__all__ = [
    "Credential",
    "DrcError",
    "DrcManager",
    "EFA",
    "IBVERBS",
    "PROVIDERS",
    "TCP",
    "UGNI",
    "FabricProvider",
    "LogGPParams",
    "fit_loggp",
    "Connection",
    "NetworkFabric",
    "TransferStats",
    "LinkConditioner",
    "TransferDropped",
]
