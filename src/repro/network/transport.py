"""Simulated RDMA transport over the cluster interconnect.

Endpoints open :class:`Connection` objects through a
:class:`NetworkFabric`, then issue two-sided sends or one-sided RDMA
reads/writes.  Timing follows the provider's LogGP parameters plus
dragonfly hop latency, and *bandwidth contention* is modeled physically:
a transfer holds the source node's egress channel and the destination
node's ingress channel for its serialization time, so concurrent flows
through one NIC queue behind each other.  That contention is exactly what
the memory-service experiment (Fig. 11) and the offloading saturation
point (Fig. 13) measure.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cluster.machine import Cluster
from ..sim.engine import Environment, Event, Process
from ..sim.resources import Resource
from .drc import DrcManager
from .fabric import FabricProvider

__all__ = [
    "NetworkFabric",
    "Connection",
    "TransferStats",
    "LinkConditioner",
    "TransferDropped",
]



class TransferDropped(ConnectionError):
    """A transfer failed due to an injected network fault.

    Raised out of the transfer process when the link between the
    endpoints is partitioned or the conditioner's loss model drops the
    message.  The sender observes the failure after the link's base
    latency (it learns from a missing completion, not instantly).
    """

    def __init__(self, message: str, src: Optional[str] = None, dst: Optional[str] = None):
        super().__init__(message)
        self.src = src
        self.dst = dst


class LinkConditioner:
    """Mutable fault state of a fabric, consulted per transfer.

    The fault-injection subsystem (:mod:`repro.faults`) degrades the
    interconnect through this object rather than monkeypatching the
    fabric: ``latency_factor`` multiplies every sampled message latency,
    ``bandwidth_factor`` scales the available bandwidth (0.5 = half the
    nominal bandwidth, doubling serialization time), ``drop_rate``
    drops a seeded fraction of transfers, and :meth:`partition`
    isolates a node set from the rest of the cluster.  Conditions are
    read when a transfer is *issued*, so transfers already queued on a
    NIC channel keep the conditions under which they were sent.

    The pristine state (all factors 1, no loss, no partition) is
    byte-for-byte identical to an unconditioned fabric: no random draws,
    no extra events.
    """

    def __init__(self):
        self.latency_factor = 1.0
        self.bandwidth_factor = 1.0
        self.drop_rate = 0.0
        self._drop_rng: Optional[np.random.Generator] = None
        self._isolated: set[str] = set()

    @property
    def pristine(self) -> bool:
        return (
            self.latency_factor == 1.0
            and self.bandwidth_factor == 1.0
            and self.drop_rate == 0.0
            and not self._isolated
        )

    # -- degradation ---------------------------------------------------------
    def degrade(self, latency_factor: float = 1.0, bandwidth_factor: float = 1.0) -> None:
        """Scale link performance; factors must be positive."""
        if latency_factor <= 0 or bandwidth_factor <= 0:
            raise ValueError("degradation factors must be positive")
        self.latency_factor = latency_factor
        self.bandwidth_factor = bandwidth_factor

    def set_loss(self, drop_rate: float, rng: Optional[np.random.Generator] = None) -> None:
        """Drop a random fraction of transfers, seeded by ``rng``."""
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError("drop_rate must be in [0, 1]")
        if drop_rate > 0 and rng is None and self._drop_rng is None:
            raise ValueError("a seeded rng is required for message loss")
        self.drop_rate = drop_rate
        if rng is not None:
            self._drop_rng = rng

    def restore(self) -> None:
        """Reset factors and loss (partitions heal separately)."""
        self.latency_factor = 1.0
        self.bandwidth_factor = 1.0
        self.drop_rate = 0.0

    # -- partitions ----------------------------------------------------------
    def partition(self, nodes) -> None:
        """Isolate ``nodes`` from every node outside the set."""
        self._isolated |= set(nodes)

    def heal(self, nodes=None) -> None:
        """Undo a partition (all of it when ``nodes`` is None)."""
        if nodes is None:
            self._isolated.clear()
        else:
            self._isolated -= set(nodes)

    def is_blocked(self, src: str, dst: str) -> bool:
        return (src in self._isolated) != (dst in self._isolated)

    def should_drop(self) -> bool:
        if self.drop_rate <= 0.0:
            return False
        return float(self._drop_rng.random()) < self.drop_rate


class TransferStats:
    """Aggregate transfer accounting for one fabric."""

    def __init__(self):
        self.messages = 0
        self.bytes = 0

    def record(self, size: int) -> None:
        self.messages += 1
        self.bytes += size


class Connection:
    """A reliable connected queue pair between two nodes."""

    def __init__(
        self,
        fabric: "NetworkFabric",
        src: str,
        dst: str,
        user: str,
        cred_id: Optional[int],
    ):
        self.conn_id = fabric.env.next_id("connection")
        self.fabric = fabric
        self.src = src
        self.dst = dst
        self.user = user
        self.cred_id = cred_id
        self.closed = False

    # Each op returns a Process event that fires when the transfer lands.
    def send(self, size_bytes: int) -> Process:
        return self.fabric._transfer(self, self.src, self.dst, size_bytes, one_sided=False)

    def recv_response(self, size_bytes: int) -> Process:
        """A response flowing back dst -> src (e.g. invocation result)."""
        return self.fabric._transfer(self, self.dst, self.src, size_bytes, one_sided=False)

    def rdma_read(self, size_bytes: int) -> Process:
        """One-sided read of remote memory (payload flows dst -> src)."""
        return self.fabric._transfer(self, self.dst, self.src, size_bytes, one_sided=True)

    def rdma_write(self, size_bytes: int) -> Process:
        """One-sided write into remote memory (payload flows src -> dst)."""
        return self.fabric._transfer(self, self.src, self.dst, size_bytes, one_sided=True)

    def close(self) -> None:
        self.closed = True


class NetworkFabric:
    """The simulated interconnect for one cluster."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        provider: FabricProvider,
        rng: Optional[np.random.Generator] = None,
        drc: Optional[DrcManager] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.provider = provider
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.drc = drc
        self.stats = TransferStats()
        self.conditioner = LinkConditioner()
        self._egress: dict[str, Resource] = {}
        self._ingress: dict[str, Resource] = {}
        # Node indices never change once assigned, so the topology hop
        # latency for a (src, dst) pair is a constant — cache it.
        self._hop_cache: dict[tuple[str, str], float] = {}

    def _channels(self, node: str) -> tuple[Resource, Resource]:
        egress = self._egress.get(node)
        if egress is None:
            if node not in self.cluster:
                raise KeyError(f"unknown node {node!r}")
            egress = self._egress[node] = Resource(self.env, capacity=1)
            self._ingress[node] = Resource(self.env, capacity=1)
        return egress, self._ingress[node]

    def _hop_latency(self, src: str, dst: str) -> float:
        pair = (src, dst)
        hop = self._hop_cache.get(pair)
        if hop is None:
            hop = self._hop_cache[pair] = self.cluster.hop_latency(src, dst)
        return hop

    # -- connection management -------------------------------------------------
    def connect(self, src: str, dst: str, user: str, cred_id: Optional[int] = None) -> Process:
        """Establish a connection; yields the :class:`Connection`.

        On uGNI the credential is checked first (DRC, Sec. IV-A); the
        connection setup cost covers QP exchange / credential acquisition.
        """
        if self.provider.requires_credentials():
            if self.drc is None:
                raise RuntimeError("uGNI fabric requires a DrcManager")
            if cred_id is None:
                raise PermissionError("uGNI cross-job connection requires a DRC credential")
            self.drc.authorize(cred_id, user)
        # Validate node names eagerly.
        self._channels(src)
        self._channels(dst)

        def setup():
            yield self.env.timeout(self.provider.connect_s)
            return Connection(self, src, dst, user, cred_id)

        return self.env.process(setup(), name=f"connect:{src}->{dst}")

    # -- data movement ------------------------------------------------------------
    def _transfer(
        self,
        conn: Connection,
        src: str,
        dst: str,
        size_bytes: int,
        one_sided: bool,
    ) -> Process:
        if conn.closed:
            raise RuntimeError("connection is closed")
        if size_bytes < 0:
            raise ValueError("negative transfer size")
        provider = self.provider
        params = provider.params
        serialization = max(size_bytes * params.G, params.g)
        hop = self._hop_latency(src, dst)
        if one_sided:
            base_latency = provider.one_sided_base_s + hop
        else:
            base_latency = provider.two_sided_base_s + hop
        if params.jitter_sigma == 0.0:
            latency = base_latency
        else:
            latency = base_latency * float(self.rng.lognormal(mean=0.0, sigma=params.jitter_sigma))
        conditioner = self.conditioner
        if conditioner._isolated or conditioner.drop_rate > 0.0:
            # Preserves the short-circuit rng semantics of the slow path:
            # should_drop() draws only when the link is not partitioned.
            dropped = conditioner.is_blocked(src, dst) or conditioner.should_drop()
            latency *= conditioner.latency_factor
            serialization /= conditioner.bandwidth_factor
        else:
            dropped = False
            if conditioner.latency_factor != 1.0:
                latency *= conditioner.latency_factor
            if conditioner.bandwidth_factor != 1.0:
                serialization /= conditioner.bandwidth_factor
        egress, _ = self._channels(src)
        _, ingress = self._channels(dst)

        def run():
            if dropped:
                # The sender learns of the loss after the propagation
                # delay: no completion arrives, the op errors out.
                yield self.env.timeout(latency)
                raise TransferDropped(
                    f"transfer {src}->{dst} ({size_bytes} B) dropped by fault injection",
                    src=src, dst=dst,
                )
            with egress.request() as ereq:
                yield ereq
                with ingress.request() as ireq:
                    yield ireq
                    yield self.env.timeout(serialization)
            yield self.env.timeout(latency)
            self.stats.record(size_bytes)
            return size_bytes

        # Static name: per-message f-string construction showed up in the
        # transfer profile and the names are only a debugging aid.
        return self.env.process(run(), name="xfer")

    # -- analytic helpers (no simulation required) ---------------------------------
    def expected_transfer_time(self, src: str, dst: str, size_bytes: int, one_sided: bool = False) -> float:
        """Uncontended deterministic transfer time (used by planners)."""
        params = self.provider.params
        serialization = max(size_bytes * params.G, params.g)
        hop = self.cluster.hop_latency(src, dst)
        if one_sided:
            return serialization + params.o + 2 * params.L + hop
        return serialization + 2 * params.o + params.L + hop
