"""Fabric providers: the network technologies of Table I.

Cloud FaaS runs over TCP; HPC FaaS targets uGNI (Cray Aries via
libfabric), ibverbs (InfiniBand) or AWS EFA.  Each provider is a calibrated
:class:`~repro.network.logp.LogGPParams` plus metadata.  Parameters are
calibrated so that the simulated Fig. 7 reproduces the published shape:
libfabric/uGNI small-message RTT in the low single-digit microseconds,
~10 GB/s asymptotic bandwidth on Aries, TCP two orders of magnitude
slower for small messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from .logp import LogGPParams

__all__ = ["FabricProvider", "UGNI", "IBVERBS", "EFA", "TCP", "PROVIDERS"]


@dataclass(frozen=True)
class FabricProvider:
    """A network provider with LogGP timing and capability flags."""

    name: str
    params: LogGPParams
    rdma_capable: bool
    kernel_bypass: bool
    # Registration cost per memory region (pinning pages) in seconds —
    # paid once per RDMA-enabled buffer, dominates small cold connections.
    mr_registration_s: float = 0.0
    # Connection establishment cost (QP exchange / TCP+TLS handshake).
    connect_s: float = 0.0

    def requires_credentials(self) -> bool:
        """uGNI communication across batch jobs needs DRC (Sec. IV-A)."""
        return self.name == "ugni"

    # Size-independent base latency terms, precomputed once per provider
    # so the per-message transfer path does no parameter arithmetic.
    # (cached_property stores into the instance __dict__, which a frozen
    # dataclass without __slots__ still has.)
    @cached_property
    def one_sided_base_s(self) -> float:
        """Fixed one-sided op latency: ``o + 2L`` (excl. topology hops)."""
        return self.params.o + 2 * self.params.L

    @cached_property
    def two_sided_base_s(self) -> float:
        """Fixed two-sided message latency: ``2o + L`` (excl. hops)."""
        return 2 * self.params.o + self.params.L


UGNI = FabricProvider(
    name="ugni",
    params=LogGPParams(L=0.85e-6, o=0.15e-6, G=1.0 / 10.2e9, g=0.05e-6, jitter_sigma=0.08),
    rdma_capable=True,
    kernel_bypass=True,
    mr_registration_s=120e-6,
    connect_s=8e-3,  # DRC acquisition + QP setup across jobs
)

IBVERBS = FabricProvider(
    name="ibverbs",
    params=LogGPParams(L=0.9e-6, o=0.2e-6, G=1.0 / 12.0e9, g=0.05e-6, jitter_sigma=0.08),
    rdma_capable=True,
    kernel_bypass=True,
    mr_registration_s=100e-6,
    connect_s=3e-3,
)

EFA = FabricProvider(
    name="efa",
    params=LogGPParams(L=15e-6, o=1.0e-6, G=1.0 / 12.0e9, g=0.2e-6, jitter_sigma=0.12),
    rdma_capable=True,
    kernel_bypass=True,
    mr_registration_s=150e-6,
    connect_s=5e-3,
)

TCP = FabricProvider(
    name="tcp",
    params=LogGPParams(L=25e-6, o=4e-6, G=1.0 / 1.2e9, g=1e-6, jitter_sigma=0.25),
    rdma_capable=False,
    kernel_bypass=False,
    mr_registration_s=0.0,
    connect_s=0.5e-3,
)

PROVIDERS: dict[str, FabricProvider] = {
    p.name: p for p in (UGNI, IBVERBS, EFA, TCP)
}
