"""Dynamic RDMA Credentials (DRC) for cross-job uGNI communication.

Cray's uGNI restricts communication to processes inside one batch job's
protection domain.  rFaaS clients and executors live in *different* batch
jobs, so the paper implements allocation and distribution of DRC
credentials (Sec. IV-A, [Shimek'16]).  This module models the credential
life-cycle: a server-side allocation creates a credential, the owner
grants access to other users/jobs, and both sides must present the same
credential id to establish a connection.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["Credential", "DrcError", "DrcManager"]

class DrcError(PermissionError):
    """Credential missing, revoked, or not granted to the requesting user."""


@dataclass
class Credential:
    cred_id: int
    owner: str
    granted: set[str] = field(default_factory=set)
    revoked: bool = False

    def allows(self, user: str) -> bool:
        return not self.revoked and (user == self.owner or user in self.granted)


class DrcManager:
    """System-wide credential registry (one per simulated machine)."""

    def __init__(self):
        self._credentials: dict[int, Credential] = {}
        # Per-manager counter: credential ids are deterministic per
        # simulated machine, independent of interpreter history.
        self._cred_ids = itertools.count(1000)

    def acquire(self, owner: str) -> Credential:
        """Allocate a fresh credential owned by ``owner``."""
        cred = Credential(cred_id=next(self._cred_ids), owner=owner)
        self._credentials[cred.cred_id] = cred
        return cred

    def grant(self, cred_id: int, owner: str, user: str) -> None:
        """Owner grants ``user`` access to the credential."""
        cred = self._lookup(cred_id)
        if cred.owner != owner:
            raise DrcError(f"{owner!r} does not own credential {cred_id}")
        if cred.revoked:
            raise DrcError(f"credential {cred_id} is revoked")
        cred.granted.add(user)

    def authorize(self, cred_id: int, user: str) -> None:
        """Raise unless ``user`` may communicate under ``cred_id``."""
        cred = self._credentials.get(cred_id)
        if cred is None:
            raise DrcError(f"unknown credential {cred_id}")
        if not cred.allows(user):
            raise DrcError(f"user {user!r} not authorized for credential {cred_id}")

    def release(self, cred_id: int, owner: str) -> None:
        """Revoke the credential (e.g. the executor job ended)."""
        cred = self._lookup(cred_id)
        if cred.owner != owner:
            raise DrcError(f"{owner!r} does not own credential {cred_id}")
        cred.revoked = True

    def _lookup(self, cred_id: int) -> Credential:
        cred = self._credentials.get(cred_id)
        if cred is None:
            raise DrcError(f"unknown credential {cred_id}")
        return cred
