"""LogP / LogGP network performance model (Sec. IV-F).

The paper's offloading integration is built on LogP-family models
[Culler'93, Hoefler'06]: a message of ``s`` bytes costs

    T(s) = o_send + L + (s - 1) * G + o_recv

where ``L`` is wire latency, ``o`` per-message CPU overhead and ``G`` the
per-byte gap (inverse bandwidth).  We keep the continuous LogGP form and
add a multiplicative lognormal jitter term so percentile plots (Fig. 7
reports median and p95) are meaningful.

``fit_loggp`` recovers (L+2o, G) from (size, time) samples by linear
least squares — the same procedure used to "learn the network parameters"
for the offloading model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["LogGPParams", "fit_loggp"]


@dataclass(frozen=True)
class LogGPParams:
    """LogGP parameters, all in seconds / bytes-per-second."""

    L: float                 # wire latency (s)
    o: float                 # per-message CPU overhead at each side (s)
    G: float                 # per-byte gap (s/byte) == 1/bandwidth
    g: float = 0.0           # per-message gap (s) limiting injection rate
    jitter_sigma: float = 0.0  # lognormal sigma of multiplicative noise

    def __post_init__(self):
        if self.L < 0 or self.o < 0 or self.G < 0 or self.g < 0:
            raise ValueError("LogGP parameters must be non-negative")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")

    @property
    def bandwidth(self) -> float:
        """Asymptotic bandwidth in bytes/s."""
        return float("inf") if self.G == 0 else 1.0 / self.G

    def one_way(self, size_bytes: int) -> float:
        """Deterministic one-way message time for ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError("negative message size")
        return 2 * self.o + self.L + size_bytes * self.G

    def round_trip(self, size_out: int, size_back: int = 0) -> float:
        """Deterministic request/response time (e.g. an invocation RTT)."""
        return self.one_way(size_out) + self.one_way(size_back)

    def rdma_read(self, size_bytes: int) -> float:
        """One-sided read: request header out, payload back, no remote o."""
        if size_bytes < 0:
            raise ValueError("negative message size")
        return self.o + 2 * self.L + size_bytes * self.G

    def rdma_write(self, size_bytes: int) -> float:
        """One-sided write: payload out, hardware ack back."""
        if size_bytes < 0:
            raise ValueError("negative message size")
        return self.o + 2 * self.L + size_bytes * self.G

    def injection_interval(self, size_bytes: int) -> float:
        """Minimum spacing between consecutive message injections."""
        return max(self.g, size_bytes * self.G)

    def sample(self, base_time: float, rng: np.random.Generator) -> float:
        """Apply multiplicative lognormal jitter to a deterministic time."""
        if self.jitter_sigma == 0.0:
            return base_time
        return base_time * float(rng.lognormal(mean=0.0, sigma=self.jitter_sigma))

    def with_jitter(self, sigma: float) -> "LogGPParams":
        return replace(self, jitter_sigma=sigma)


def fit_loggp(sizes: np.ndarray, times: np.ndarray) -> LogGPParams:
    """Least-squares fit of (L + 2o, G) from one-way time measurements.

    ``L`` and ``o`` cannot be separated from end-to-end timings alone, so
    the constant term is attributed to ``L`` and ``o`` is set to zero —
    exactly what a client-side measurement procedure can observe.
    """
    sizes = np.asarray(sizes, dtype=float)
    times = np.asarray(times, dtype=float)
    if sizes.shape != times.shape or sizes.size < 2:
        raise ValueError("need >= 2 matching (size, time) samples")
    design = np.stack([np.ones_like(sizes), sizes], axis=1)
    (intercept, slope), *_ = np.linalg.lstsq(design, times, rcond=None)
    return LogGPParams(L=max(float(intercept), 0.0), o=0.0, G=max(float(slope), 0.0))
