"""Analysis: utilization statistics, table rendering."""

from .tables import format_value, render_table
from .utilization import (
    IdleStats,
    idle_duration_stats,
    sampled_idle_durations,
    utilization_summary,
)

__all__ = [
    "format_value",
    "render_table",
    "IdleStats",
    "idle_duration_stats",
    "sampled_idle_durations",
    "utilization_summary",
]
