"""Idle-event and utilization statistics (the Fig. 1 analyses).

The paper's headline measurements: the median number of idle nodes at any
sampling point was 252; idle periods have a median of 5–6.5 minutes and
70–80 % last under 10 minutes.  These functions compute exactly those
statistics from the sampler / tracker series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..sim.trace import TimeSeries

__all__ = ["IdleStats", "idle_duration_stats", "sampled_idle_durations", "utilization_summary"]


@dataclass(frozen=True)
class IdleStats:
    """Summary of idle-period durations (seconds)."""

    count: int
    median_s: float
    mean_s: float
    fraction_under_10min: float
    p90_s: float

    def as_row(self) -> list:
        return [
            self.count,
            self.median_s / 60.0,
            self.mean_s / 60.0,
            self.fraction_under_10min,
            self.p90_s / 60.0,
        ]


def idle_duration_stats(durations: Sequence[float]) -> IdleStats:
    if not len(durations):
        raise ValueError("no idle periods observed")
    arr = np.asarray(durations, dtype=float)
    return IdleStats(
        count=int(arr.size),
        median_s=float(np.median(arr)),
        mean_s=float(arr.mean()),
        fraction_under_10min=float((arr < 600.0).mean()),
        p90_s=float(np.percentile(arr, 90)),
    )


def sampled_idle_durations(series: TimeSeries, interval: float) -> list[float]:
    """Estimate idle durations from a discretely sampled busy series.

    Mirrors the paper's methodology note on Fig. 1c: with two-minute
    polling, an idle period's duration is known only to sample
    granularity; we count consecutive idle samples.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    durations = []
    run = 0
    for value in series.values:
        if value == 0.0:
            run += 1
        else:
            if run:
                durations.append(run * interval)
            run = 0
    if run:
        durations.append(run * interval)
    return durations


def utilization_summary(idle_nodes: TimeSeries, total_nodes: int) -> dict:
    """Aggregate Fig.-1a style numbers from the sampled idle-node series."""
    if total_nodes < 1:
        raise ValueError("need >= 1 node")
    values = idle_nodes.values
    if values.size == 0:
        raise ValueError("empty series")
    return {
        "median_idle_nodes": float(np.median(values)),
        "mean_idle_nodes": float(values.mean()),
        "max_idle_nodes": float(values.max()),
        "median_allocated_fraction": float(np.median(1.0 - values / total_nodes)),
        "mean_allocated_fraction": float(np.mean(1.0 - values / total_nodes)),
    }
