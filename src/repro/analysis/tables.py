"""Plain-text table rendering for benchmark reports.

The benchmark harness regenerates the paper's tables and figure series as
text; every experiment module formats its results through this renderer
so outputs are uniform and diffable.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ValueError("need at least one column")
    str_rows = [[format_value(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
