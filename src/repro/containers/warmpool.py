"""Warm container pool hosted in idle node memory (Sec. III-C, IV-B).

The paper's answer to cold starts: instead of making them faster, make
them *rarer* by parking started containers in memory nobody is using.
The pool is compatible with batch reclamation — when the batch system
needs the memory, warm containers are evicted instantly, optionally
swapped to the parallel filesystem so a later invocation pays a swap-in
rather than a full cold start.

Costs returned by :meth:`WarmPool.acquire` are in seconds; the caller
(the rFaaS executor) advances simulated time by them, so the pool itself
stays a plain passive data structure.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass
from typing import Optional

from ..cluster.node import Allocation, AllocationError, Node
from ..sim.engine import Environment
from ..telemetry import SpanKind, telemetry_of
from .image import Image
from .runtime import ContainerRuntime

__all__ = ["ContainerState", "WarmContainer", "WarmPool", "AcquireResult"]

_container_ids = itertools.count(1)


class ContainerState(enum.Enum):
    WARM = "warm"          # resident in node memory, ready for dispatch
    IN_USE = "in_use"      # currently executing an invocation
    SWAPPED = "swapped"    # evicted to the parallel filesystem


class WarmContainer:
    """A started container instance.

    ``container_id`` defaults to a module-global counter for bare
    construction (tests); the pool passes ``env.next_id`` so ids are
    per-environment and deterministic across process histories.
    """

    def __init__(self, image: Image, node_name: str, alloc: Optional[Allocation],
                 container_id: Optional[int] = None):
        self.container_id = (
            container_id if container_id is not None else next(_container_ids)
        )
        self.image = image
        self.node_name = node_name
        self.alloc = alloc           # memory held while resident
        self.state = ContainerState.IN_USE
        self.last_used = 0.0


@dataclass(frozen=True)
class AcquireResult:
    container: WarmContainer
    startup_cost_s: float
    kind: str                       # "warm" | "swapped" | "cold"


class WarmPool:
    """Per-node cache of warm containers living in idle memory."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        runtime: ContainerRuntime,
        swap_bandwidth: float = 5e9,
        owner: str = "rfaas-warmpool",
    ):
        if swap_bandwidth <= 0:
            raise ValueError("swap_bandwidth must be positive")
        self.env = env
        self.node = node
        self.runtime = runtime
        self.swap_bandwidth = swap_bandwidth
        self.owner = owner
        self._warm: dict[int, WarmContainer] = {}
        self._swapped: dict[int, WarmContainer] = {}
        # Statistics for the ablation benches.
        self.hits = 0
        self.swap_ins = 0
        self.cold_starts = 0
        self.evictions = 0
        # Telemetry: per-node counters and a resident-bytes gauge.
        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        labels = {"node": node.name}
        metrics = telemetry.metrics
        self._m_hits = metrics.counter(
            "repro_warmpool_hits_total", labels=labels,
            help="acquisitions served by a resident warm container",
        )
        self._m_swapins = metrics.counter(
            "repro_warmpool_swapins_total", labels=labels,
            help="acquisitions restored from the parallel filesystem",
        )
        self._m_cold = metrics.counter(
            "repro_warmpool_cold_starts_total", labels=labels,
            help="acquisitions that paid a full cold start",
        )
        self._m_evictions = metrics.counter(
            "repro_warmpool_evictions_total", labels=labels,
            help="warm containers evicted for memory reclamation",
        )
        self._m_resident = metrics.gauge(
            "repro_warmpool_resident_bytes", labels=labels,
            help="memory held by parked warm containers",
        )

    def _record_resident(self) -> None:
        self._m_resident.set(self.resident_bytes())

    # -- views -------------------------------------------------------------
    @property
    def warm_count(self) -> int:
        return len(self._warm)

    @property
    def swapped_count(self) -> int:
        return len(self._swapped)

    def warm_count_for(self, image_name: str) -> int:
        """Resident warm containers for ``image_name`` (autoscaler signal)."""
        return sum(1 for c in self._warm.values() if c.image.name == image_name)

    def resident_bytes(self) -> int:
        return sum(c.image.runtime_memory_bytes for c in self._warm.values())

    # -- acquisition -----------------------------------------------------------
    def acquire(self, image: Image) -> AcquireResult:
        """Get a container for ``image``: warm hit, swap-in, or cold start."""
        # 1. Warm hit: LRU-newest first (it is most likely still cached).
        candidates = [c for c in self._warm.values() if c.image.name == image.name]
        if candidates:
            container = max(candidates, key=lambda c: c.last_used)
            del self._warm[container.container_id]
            container.state = ContainerState.IN_USE
            self.hits += 1
            self._m_hits.inc()
            self._note_acquire(image, "warm")
            return AcquireResult(container, self.runtime.warm_attach_s, "warm")

        # 2. Swapped instance: pay swap-in (read image state back) + attach.
        swapped = [c for c in self._swapped.values() if c.image.name == image.name]
        if swapped:
            container = max(swapped, key=lambda c: c.last_used)
            alloc = self._allocate_memory(image)
            del self._swapped[container.container_id]
            container.alloc = alloc
            container.state = ContainerState.IN_USE
            self.swap_ins += 1
            self._m_swapins.inc()
            self._note_acquire(image, "swapped")
            cost = image.runtime_memory_bytes / self.swap_bandwidth + self.runtime.warm_attach_s
            return AcquireResult(container, cost, "swapped")

        # 3. Cold start.
        alloc = self._allocate_memory(image)
        container = WarmContainer(image, self.node.name, alloc,
                                  container_id=self.env.next_id("container"))
        self.cold_starts += 1
        self._m_cold.inc()
        self._note_acquire(image, "cold")
        return AcquireResult(container, self.runtime.cold_start_time(image), "cold")

    def _note_acquire(self, image: Image, kind: str) -> None:
        self._record_resident()
        self._tracer.instant(
            SpanKind.WARMPOOL_ACQUIRE, track=f"{self.node.name}/warmpool",
            image=image.name, kind=kind,
        )

    def _allocate_memory(self, image: Image) -> Allocation:
        """Claim container memory, evicting LRU warm containers if needed."""
        need = image.runtime_memory_bytes
        while not self.node.can_allocate(memory_bytes=need) and self._warm:
            self._evict_lru(swap=True)
        try:
            return self.node.allocate(
                owner=self.owner, memory_bytes=need, kind="container"
            )
        except AllocationError as exc:
            raise AllocationError(
                f"node {self.node.name}: no memory for container of {image.name!r}"
            ) from exc

    def release(self, container: WarmContainer) -> None:
        """Return a container to the warm set after an invocation."""
        if container.state != ContainerState.IN_USE:
            raise ValueError(f"container {container.container_id} not in use")
        container.state = ContainerState.WARM
        container.last_used = self.env.now
        self._warm[container.container_id] = container
        self._record_resident()

    def discard(self, container: WarmContainer) -> None:
        """Destroy an in-use container without keeping it warm."""
        if container.alloc is not None:
            self.node.release(container.alloc)
            container.alloc = None

    # -- reclamation ---------------------------------------------------------------
    def _evict_lru(self, swap: bool) -> int:
        container = min(self._warm.values(), key=lambda c: c.last_used)
        del self._warm[container.container_id]
        freed = container.image.runtime_memory_bytes
        self.node.release(container.alloc)
        container.alloc = None
        self.evictions += 1
        self._m_evictions.inc()
        self._record_resident()
        self._tracer.instant(
            "warmpool.evict", track=f"{self.node.name}/warmpool",
            image=container.image.name, swap=swap,
        )
        if swap:
            container.state = ContainerState.SWAPPED
            self._swapped[container.container_id] = container
        return freed

    def reclaim(self, bytes_needed: int, swap: bool = True) -> int:
        """Free at least ``bytes_needed`` of warm memory; returns freed bytes.

        Idle containers 'can be removed immediately without consequences'
        (Sec. IV-B); with ``swap`` they survive on the PFS.
        """
        freed = 0
        while freed < bytes_needed and self._warm:
            freed += self._evict_lru(swap=swap)
        return freed

    def evict_fraction(self, fraction: float, swap: bool = True) -> int:
        """Evict the LRU ``fraction`` of parked containers; returns bytes freed.

        The fault injector's memory-pressure events use this to model a
        batch system clawing back idle memory without a full drain.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        victims = math.ceil(len(self._warm) * fraction)
        freed = 0
        for _ in range(victims):
            if not self._warm:
                break
            freed += self._evict_lru(swap=swap)
        return freed

    def drain(self) -> None:
        """Evict everything (node leaves the resource pool, Sec. IV-E)."""
        self.reclaim(self.resident_bytes(), swap=True)

    # -- migration (Sec. III-C) -------------------------------------------------
    def export_warm(self) -> list[WarmContainer]:
        """Detach all warm containers for migration to another node.

        Their memory is freed here; the destination pool re-allocates it
        via :meth:`import_container`.  In-use containers stay.
        """
        exported = list(self._warm.values())
        for container in exported:
            del self._warm[container.container_id]
            self.node.release(container.alloc)
            container.alloc = None
        self._record_resident()
        return exported

    def import_container(self, container: WarmContainer) -> None:
        """Adopt a migrated container as warm on this node."""
        if container.alloc is not None:
            raise ValueError("container still holds memory on the source node")
        container.alloc = self._allocate_memory(container.image)
        container.node_name = self.node.name
        container.state = ContainerState.WARM
        container.last_used = self.env.now
        self._warm[container.container_id] = container
        self._record_resident()
