"""Container substrate: images, runtimes (Table II), warm pools."""

from .image import Image, ImageFormat, Registry
from .runtime import DOCKER, RUNTIMES, SARUS, SINGULARITY, ContainerRuntime
from .warmpool import AcquireResult, ContainerState, WarmContainer, WarmPool

__all__ = [
    "Image",
    "ImageFormat",
    "Registry",
    "DOCKER",
    "RUNTIMES",
    "SARUS",
    "SINGULARITY",
    "ContainerRuntime",
    "AcquireResult",
    "ContainerState",
    "WarmContainer",
    "WarmPool",
]
