"""Container images and registries.

Images matter to the FaaS platform for two reasons: their format decides
which runtimes can run them (Table II) and their size drives cold-start
cost (pull + unpack + start, Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ImageFormat", "Image", "Registry"]

MiB = 1024**2


class ImageFormat:
    DOCKER = "docker"
    SINGULARITY = "singularity"   # SIF, not Docker-compatible


@dataclass(frozen=True)
class Image:
    """An immutable container image."""

    name: str
    size_bytes: int
    format: str = ImageFormat.DOCKER
    # Memory footprint of a started container (runtime + loaded function).
    runtime_memory_bytes: int = 256 * MiB

    def __post_init__(self):
        if self.size_bytes <= 0:
            raise ValueError("image size must be positive")
        if self.runtime_memory_bytes <= 0:
            raise ValueError("runtime memory must be positive")
        if self.format not in (ImageFormat.DOCKER, ImageFormat.SINGULARITY):
            raise ValueError(f"unknown image format {self.format!r}")


class Registry:
    """A named image store (Docker registry semantics)."""

    def __init__(self, name: str = "registry"):
        self.name = name
        self._images: dict[str, Image] = {}

    def push(self, image: Image) -> None:
        self._images[image.name] = image

    def pull(self, name: str) -> Image:
        try:
            return self._images[name]
        except KeyError:
            raise KeyError(f"image {name!r} not in registry {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._images

    def __len__(self) -> int:
        return len(self._images)
