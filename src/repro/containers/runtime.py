"""Container runtimes: Docker, Singularity, Sarus (Table II).

The paper argues classical cloud sandboxes are unsuitable for HPC
(Sec. IV-C): Docker lacks batch-system and native-MPI integration and
raises privilege-escalation concerns, while HPC-native runtimes
(Singularity, Sarus) provide automatic device access, SLURM integration,
and dynamic relinking of the host MPI.  Each runtime here carries the
Table II feature matrix plus a cold/warm timing model used by the warm
pool and the FaaS executor.
"""

from __future__ import annotations

from dataclasses import dataclass

from .image import Image, ImageFormat

__all__ = ["ContainerRuntime", "DOCKER", "SINGULARITY", "SARUS", "RUNTIMES"]


@dataclass(frozen=True)
class ContainerRuntime:
    """A container system's capabilities and timing parameters."""

    name: str
    image_formats: tuple[str, ...]
    has_registry_support: bool
    automatic_device_access: bool      # GPUs/NICs without plugins
    automatic_resource_limits: bool    # via SLURM cgroups
    batch_system_integration: bool     # launchable under SLURM
    native_mpi_support: bool           # host-MPI relinking
    rootless: bool
    # Timing model (seconds).
    create_start_s: float              # sandbox create + start, image local
    unpack_bandwidth: float            # bytes/s for image unpack/extract
    warm_attach_s: float               # dispatch into an already-running container

    def supports_image(self, image: Image) -> bool:
        return image.format in self.image_formats

    def cold_start_time(self, image: Image) -> float:
        """Cold start with the image already on the node's filesystem.

        Pull cost is separate (it depends on the storage backend); this is
        the 'hundreds of milliseconds in the best case' of Sec. IV-B.
        """
        if not self.supports_image(image):
            raise ValueError(f"{self.name} cannot run {image.format} images")
        return self.create_start_s + image.size_bytes / self.unpack_bandwidth

    def suitable_for_hpc_functions(self) -> bool:
        """The Sec. IV-C requirement set for HPC FaaS sandboxes."""
        return (
            self.rootless
            and self.automatic_device_access
            and self.batch_system_integration
            and self.native_mpi_support
        )


DOCKER = ContainerRuntime(
    name="docker",
    image_formats=(ImageFormat.DOCKER,),
    has_registry_support=True,
    automatic_device_access=False,     # through plugins only
    automatic_resource_limits=True,    # native cgroups
    batch_system_integration=False,
    native_mpi_support=False,
    rootless=False,                    # default daemon model
    create_start_s=0.45,
    unpack_bandwidth=600e6,
    warm_attach_s=2e-3,
)

SINGULARITY = ContainerRuntime(
    name="singularity",
    image_formats=(ImageFormat.SINGULARITY,),
    has_registry_support=False,
    automatic_device_access=True,
    automatic_resource_limits=True,
    batch_system_integration=True,
    native_mpi_support=True,
    rootless=True,
    create_start_s=0.12,
    unpack_bandwidth=1.5e9,            # SIF is a single flat image
    warm_attach_s=0.5e-3,
)

SARUS = ContainerRuntime(
    name="sarus",
    image_formats=(ImageFormat.DOCKER,),
    has_registry_support=True,
    automatic_device_access=True,
    automatic_resource_limits=True,
    batch_system_integration=True,
    native_mpi_support=True,
    rootless=True,
    create_start_s=0.15,
    unpack_bandwidth=1.2e9,
    warm_attach_s=0.5e-3,
)

RUNTIMES: dict[str, ContainerRuntime] = {
    r.name: r for r in (DOCKER, SINGULARITY, SARUS)
}
