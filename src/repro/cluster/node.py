"""Node model with explicit allocation bookkeeping.

A node tracks three independently allocatable resources — CPU cores,
memory bytes and GPU devices — because software disaggregation (Sec. III)
hands out exactly the resources a batch job left unused.  Allocations are
tagged with an owner so that the disaggregation controller can account
batch jobs and serverless functions separately and reclaim the latter.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .specs import NodeSpec

__all__ = ["Allocation", "Node", "AllocationError"]

class AllocationError(RuntimeError):
    """Requested resources exceed what the node has free."""


@dataclass(frozen=True)
class Allocation:
    """A granted slice of one node's resources."""

    alloc_id: int
    node_name: str
    owner: str
    kind: str              # "batch" | "function" | "memservice" | ...
    cores: int
    memory_bytes: int
    gpu_ids: tuple[int, ...]

    @property
    def uses_gpu(self) -> bool:
        return bool(self.gpu_ids)


class Node:
    """One cluster node: capacity plus live allocation state."""

    def __init__(self, name: str, spec: NodeSpec):
        self.name = name
        self.spec = spec
        self._allocations: dict[int, Allocation] = {}
        # Per-node counter: allocation ids are scoped to this node's
        # table, so numbering restarts with every cluster build.
        self._alloc_ids = itertools.count(1)
        self._free_cores = spec.cores
        self._free_memory = spec.memory_bytes
        self._free_gpus: set[int] = set(range(len(spec.gpus)))
        # Drain flag: a draining node accepts no new allocations (Sec. IV-E).
        self.draining = False

    # -- capacity views -----------------------------------------------------
    @property
    def total_cores(self) -> int:
        return self.spec.cores

    @property
    def total_memory(self) -> int:
        return self.spec.memory_bytes

    @property
    def total_gpus(self) -> int:
        return len(self.spec.gpus)

    @property
    def free_cores(self) -> int:
        return self._free_cores

    @property
    def free_memory(self) -> int:
        return self._free_memory

    @property
    def free_gpu_ids(self) -> frozenset[int]:
        return frozenset(self._free_gpus)

    @property
    def allocated_cores(self) -> int:
        return self.spec.cores - self._free_cores

    @property
    def allocated_memory(self) -> int:
        return self.spec.memory_bytes - self._free_memory

    @property
    def is_idle(self) -> bool:
        """True when nothing at all is allocated (the Fig.-1a sense)."""
        return not self._allocations

    @property
    def allocations(self) -> tuple[Allocation, ...]:
        return tuple(self._allocations.values())

    def allocations_of_kind(self, kind: str) -> tuple[Allocation, ...]:
        return tuple(a for a in self._allocations.values() if a.kind == kind)

    def core_utilization(self) -> float:
        return self.allocated_cores / self.spec.cores

    def memory_utilization(self) -> float:
        return self.allocated_memory / self.spec.memory_bytes

    # -- allocation ---------------------------------------------------------
    def can_allocate(self, cores: int = 0, memory_bytes: int = 0, gpus: int = 0) -> bool:
        if self.draining:
            return False
        return (
            cores <= self._free_cores
            and memory_bytes <= self._free_memory
            and gpus <= len(self._free_gpus)
        )

    def allocate(
        self,
        owner: str,
        cores: int = 0,
        memory_bytes: int = 0,
        gpus: int = 0,
        kind: str = "batch",
    ) -> Allocation:
        """Claim resources; raises :class:`AllocationError` if unavailable."""
        if cores < 0 or memory_bytes < 0 or gpus < 0:
            raise ValueError("resource amounts must be non-negative")
        if cores == 0 and memory_bytes == 0 and gpus == 0:
            raise ValueError("empty allocation")
        if self.draining:
            raise AllocationError(f"node {self.name} is draining")
        if cores > self._free_cores:
            raise AllocationError(
                f"node {self.name}: {cores} cores requested, {self._free_cores} free"
            )
        if memory_bytes > self._free_memory:
            raise AllocationError(
                f"node {self.name}: {memory_bytes} B requested, {self._free_memory} B free"
            )
        if gpus > len(self._free_gpus):
            raise AllocationError(
                f"node {self.name}: {gpus} GPUs requested, {len(self._free_gpus)} free"
            )
        gpu_ids = tuple(sorted(self._free_gpus)[:gpus])
        self._free_cores -= cores
        self._free_memory -= memory_bytes
        self._free_gpus.difference_update(gpu_ids)
        alloc = Allocation(
            alloc_id=next(self._alloc_ids),
            node_name=self.name,
            owner=owner,
            kind=kind,
            cores=cores,
            memory_bytes=memory_bytes,
            gpu_ids=gpu_ids,
        )
        self._allocations[alloc.alloc_id] = alloc
        return alloc

    def release(self, alloc: Allocation) -> None:
        if alloc.alloc_id not in self._allocations:
            raise KeyError(f"allocation {alloc.alloc_id} not held on node {self.name}")
        del self._allocations[alloc.alloc_id]
        self._free_cores += alloc.cores
        self._free_memory += alloc.memory_bytes
        self._free_gpus.update(alloc.gpu_ids)
        assert 0 <= self._free_cores <= self.spec.cores
        assert 0 <= self._free_memory <= self.spec.memory_bytes

    def release_owner(self, owner: str) -> list[Allocation]:
        """Release everything held by ``owner``; returns what was freed."""
        released = [a for a in self._allocations.values() if a.owner == owner]
        for alloc in released:
            self.release(alloc)
        return released

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Node {self.name} cores={self.allocated_cores}/{self.spec.cores}"
            f" mem={self.allocated_memory / 2**30:.0f}/{self.spec.memory_bytes / 2**30:.0f}GiB"
            f" gpus={self.total_gpus - len(self._free_gpus)}/{self.total_gpus}>"
        )
