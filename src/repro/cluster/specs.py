"""Hardware presets for the systems evaluated in the paper.

The paper runs on two systems (Sec. V):

* **Piz Daint** (Cray XC40/XC50, Aries interconnect):
  multicore nodes with 2x18-core Xeon E5-2695 v4 @ 2.10 GHz and 128 GB,
  and GPU nodes with a 12-core Xeon E5-2690 v3 @ 2.60 GHz, 64 GB and one
  NVIDIA P100.
* **Ault**: 2x18-core Xeon Gold 6154 @ 3.00 GHz with 377 GB (InfiniBand),
  plus nodes with 2x AMD EPYC 7742 (128 cores) and 256 GB for the OpenMC
  experiments.

These presets parameterize the simulated cluster so experiments quote the
same node shapes as the paper (e.g. "32 of 36 cores", "9 of 12 cores").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "GpuSpec",
    "NodeSpec",
    "DAINT_MC",
    "DAINT_GPU",
    "AULT",
    "AULT_EPYC",
    "PRESETS",
]

GiB = 1024**3


@dataclass(frozen=True)
class GpuSpec:
    """A GPU device type."""

    model: str
    memory_bytes: int
    sm_count: int
    # Peak double-precision throughput; used by the GPU kernel model.
    peak_gflops: float
    # Device memory bandwidth in bytes/s.
    mem_bandwidth: float


P100 = GpuSpec(
    model="NVIDIA Tesla P100",
    memory_bytes=16 * GiB,
    sm_count=56,
    peak_gflops=4700.0,
    mem_bandwidth=732e9,
)


@dataclass(frozen=True)
class NodeSpec:
    """Per-node hardware shape and calibrated capacity parameters."""

    name: str
    cores: int
    memory_bytes: int
    sockets: int = 2
    gpus: tuple[GpuSpec, ...] = ()
    clock_ghz: float = 2.1
    # Aggregate DRAM bandwidth (bytes/s) — the contended resource in the
    # interference model (MILC is membw-bound; Sec. V-C).
    mem_bandwidth: float = 120e9
    # Injection bandwidth into the interconnect (bytes/s per node).
    net_bandwidth: float = 10e9
    # Shared last-level cache per socket (bytes).
    llc_bytes: int = 45 * 1024 * 1024

    @property
    def memory_gib(self) -> float:
        return self.memory_bytes / GiB

    def with_overrides(self, **kwargs) -> "NodeSpec":
        from dataclasses import replace

        return replace(self, **kwargs)


DAINT_MC = NodeSpec(
    name="daint-mc",
    cores=36,
    memory_bytes=128 * GiB,
    sockets=2,
    clock_ghz=2.1,
    mem_bandwidth=136e9,   # 2x 68 GB/s (Broadwell, 4ch DDR4-2133)
    net_bandwidth=10.2e9,  # Aries injection ~82 Gbit/s
    llc_bytes=45 * 1024 * 1024,
)

DAINT_GPU = NodeSpec(
    name="daint-gpu",
    cores=12,
    memory_bytes=64 * GiB,
    sockets=1,
    gpus=(P100,),
    clock_ghz=2.6,
    mem_bandwidth=68e9,
    net_bandwidth=10.2e9,
    llc_bytes=30 * 1024 * 1024,
)

AULT = NodeSpec(
    name="ault",
    cores=36,
    memory_bytes=377 * GiB,
    sockets=2,
    clock_ghz=3.0,
    mem_bandwidth=256e9,   # Skylake 6ch DDR4-2666 x2
    net_bandwidth=12.5e9,  # EDR InfiniBand
    llc_bytes=25 * 1024 * 1024,
)

AULT_EPYC = NodeSpec(
    name="ault-epyc",
    cores=128,
    memory_bytes=256 * GiB,
    sockets=2,
    clock_ghz=2.25,
    mem_bandwidth=380e9,   # Rome 8ch DDR4-3200 x2
    net_bandwidth=12.5e9,
    llc_bytes=256 * 1024 * 1024,
)

PRESETS: dict[str, NodeSpec] = {
    spec.name: spec for spec in (DAINT_MC, DAINT_GPU, AULT, AULT_EPYC)
}
