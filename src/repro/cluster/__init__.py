"""Cluster hardware model: nodes, specs, machine, interconnect topology."""

from .machine import Cluster, build_daint
from .node import Allocation, AllocationError, Node
from .specs import AULT, AULT_EPYC, DAINT_GPU, DAINT_MC, GpuSpec, NodeSpec, PRESETS
from .topology import DragonflyTopology

__all__ = [
    "Cluster",
    "build_daint",
    "Allocation",
    "AllocationError",
    "Node",
    "AULT",
    "AULT_EPYC",
    "DAINT_GPU",
    "DAINT_MC",
    "GpuSpec",
    "NodeSpec",
    "PRESETS",
    "DragonflyTopology",
]
