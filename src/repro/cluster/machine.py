"""Cluster: a named collection of nodes plus aggregate queries.

The machine object is pure state — scheduling policy lives in
``repro.slurm`` and placement policy in ``repro.rfaas`` / ``repro.disagg``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from .node import Node
from .specs import DAINT_GPU, DAINT_MC, NodeSpec
from .topology import DragonflyTopology

__all__ = ["Cluster", "build_daint"]


class Cluster:
    """An ordered set of nodes with an interconnect topology."""

    def __init__(self, topology: Optional[DragonflyTopology] = None):
        self._nodes: dict[str, Node] = {}
        self._index: dict[str, int] = {}
        self.topology = topology or DragonflyTopology()

    # -- construction ---------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._index[node.name] = len(self._nodes)
        self._nodes[node.name] = node
        return node

    def add_nodes(self, prefix: str, count: int, spec: NodeSpec) -> list[Node]:
        return [self.add_node(Node(f"{prefix}{i:04d}", spec)) for i in range(count)]

    # -- lookup -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def node_index(self, name: str) -> int:
        return self._index[name]

    def nodes(self, predicate: Optional[Callable[[Node], bool]] = None) -> list[Node]:
        if predicate is None:
            return list(self._nodes.values())
        return [n for n in self._nodes.values() if predicate(n)]

    # -- aggregate state ----------------------------------------------------------
    def idle_nodes(self) -> list[Node]:
        return self.nodes(lambda n: n.is_idle and not n.draining)

    def idle_node_count(self) -> int:
        return len(self.idle_nodes())

    def total_cores(self) -> int:
        return sum(n.total_cores for n in self)

    def allocated_cores(self) -> int:
        return sum(n.allocated_cores for n in self)

    def total_memory(self) -> int:
        return sum(n.total_memory for n in self)

    def allocated_memory(self) -> int:
        return sum(n.allocated_memory for n in self)

    def core_utilization(self) -> float:
        total = self.total_cores()
        return self.allocated_cores() / total if total else 0.0

    def memory_utilization(self) -> float:
        total = self.total_memory()
        return self.allocated_memory() / total if total else 0.0

    def hop_latency(self, src: str, dst: str) -> float:
        """Topology latency between two named nodes (seconds, one-way)."""
        return self.topology.latency(self._index[src], self._index[dst])

    def find_fit(
        self,
        cores: int = 0,
        memory_bytes: int = 0,
        gpus: int = 0,
        exclude: Iterable[str] = (),
    ) -> Optional[Node]:
        """First node that can host the request (deterministic order)."""
        excluded = set(exclude)
        for node in self:
            if node.name in excluded:
                continue
            if node.can_allocate(cores=cores, memory_bytes=memory_bytes, gpus=gpus):
                return node
        return None


def build_daint(mc_nodes: int = 1813, gpu_nodes: int = 5704) -> Cluster:
    """A Piz-Daint-shaped cluster (defaults: production node counts).

    Tests and benchmarks usually pass far smaller counts; the defaults
    document the real machine (XC50 GPU partition 5704 nodes, XC40
    multicore partition 1813 nodes).
    """
    cluster = Cluster()
    cluster.add_nodes("mc", mc_nodes, DAINT_MC)
    cluster.add_nodes("gpu", gpu_nodes, DAINT_GPU)
    return cluster
