"""Interconnect topology model.

Piz Daint's Aries network is a dragonfly: nodes attach to routers, routers
form all-to-all *groups*, groups connect via optical links.  For the
latency effects the paper's experiments exercise (same-node vs. same-group
vs. remote invocations) a three-level hop model is sufficient:

* same node            -> 0 hops (shared memory)
* same group           -> ``intra_group_hops``
* different groups     -> ``inter_group_hops``

Per-hop latency is added to the LogGP base latency by the transport layer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DragonflyTopology"]


@dataclass(frozen=True)
class DragonflyTopology:
    """Maps node indices to dragonfly groups and hop counts."""

    nodes_per_group: int = 384      # Aries: 96 routers x 4 nodes per group
    intra_group_hops: int = 2       # router -> router within group
    inter_group_hops: int = 5       # up to 2 local + 1 optical + 2 local
    hop_latency_s: float = 100e-9   # ~100 ns per Aries router traversal

    def __post_init__(self):
        if self.nodes_per_group < 1:
            raise ValueError("nodes_per_group must be >= 1")
        if not 0 <= self.intra_group_hops <= self.inter_group_hops:
            raise ValueError("hop counts must satisfy 0 <= intra <= inter")

    def group_of(self, node_index: int) -> int:
        if node_index < 0:
            raise ValueError("negative node index")
        return node_index // self.nodes_per_group

    def hops(self, src_index: int, dst_index: int) -> int:
        if src_index == dst_index:
            return 0
        if self.group_of(src_index) == self.group_of(dst_index):
            return self.intra_group_hops
        return self.inter_group_hops

    def latency(self, src_index: int, dst_index: int) -> float:
        """Topology-induced extra one-way latency in seconds."""
        return self.hops(src_index, dst_index) * self.hop_latency_s
