"""The Platform facade: one call builds the whole simulated rFaaS stack.

Every experiment used to wire the same six objects by hand — simulation
environment, cluster + topology, DRC credential manager, network fabric,
load registry, resource manager, function registry.
:meth:`Platform.build` does that wiring once, with one seed fanned out
into per-component rng streams, and returns a handle exposing the
pieces experiments actually touch::

    from repro.api import ClusterSpec, Platform

    platform = Platform.build(ClusterSpec(nodes=2), seed=0)
    platform.register_node("n0001", cores=2, memory_bytes=8 * 2**30)
    platform.functions.register("noop", image, runtime_s=0.0, demand=demand)
    client = platform.client("n0000")

    def bench():
        result = yield client.invoke("noop", payload_bytes=64)

    platform.process(bench())
    platform.run_until(10.0)

Fault injection and telemetry ride the same call: ``faults=`` takes a
:class:`~repro.faults.FaultPlan` (replayed by a seeded
:class:`~repro.faults.Injector` as the simulation runs), ``telemetry=``
pins a telemetry scope to the environment (``None`` keeps the default
resolution, so an active :class:`~repro.telemetry.TelemetryCollector` —
e.g. the CLI's ``--trace`` — still sees the run).

So do the capacity control plane and the cloud baseline: ``capacity=``
builds a :class:`~repro.capacity.CapacityPlane` (forecast → autoscale →
admit → burst) in front of the manager, and ``cloud=`` configures the
:class:`~repro.cloudfaas.CloudFaaSPlatform` reachable at
``platform.cloud`` (built lazily on first use otherwise).  A
:class:`~repro.disagg.DisaggregationController` bridging a batch
scheduler onto this platform's manager comes from
:meth:`Platform.attach_controller`.

Determinism: ``Platform.build(spec, seed=s)`` derives the fabric rng
from ``s``, the manager rng from ``s + 1``, the injector rng from
``s + 2``, and the cloud-gateway rng from ``s + 3`` — the first three
are the same fan-out the experiments used before the facade, so ported
experiments reproduce their historical numbers exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace
from typing import Any, Optional

import numpy as np

from .capacity import CapacityConfig, CapacityPlane
from .cloudfaas import CloudConfig, CloudFaaSPlatform
from .cluster import Cluster, DAINT_MC, DragonflyTopology, NodeSpec
from .controlplane import HAConfig, ReplicatedResourceManager
from .disagg import ControllerConfig, DisaggregationController
from .faults import FaultPlan, Injector
from .gpuservice import GpuService, GpuServiceConfig
from .memservice import (
    DurableMemoryClient,
    DurableMemoryConfig,
    ReplicatedMemoryService,
)
from .network import DrcManager, FabricProvider, NetworkFabric, UGNI
from .rfaas import (
    FunctionRegistry,
    NodeLoadRegistry,
    ResourceManager,
    RFaaSClient,
)
from .sim import Environment
from .telemetry import Telemetry, TelemetryCollector, install, telemetry_of

__all__ = ["ClusterSpec", "Platform"]


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of the simulated cluster a :class:`Platform` is built on.

    ``jitter`` overrides the fabric provider's latency jitter fraction
    (``None`` keeps the provider default; ``0.0`` makes the network
    fully deterministic).
    """

    nodes: int = 2
    node_spec: NodeSpec = DAINT_MC
    prefix: str = "n"
    provider: FabricProvider = UGNI
    jitter: Optional[float] = None
    nodes_per_group: int = 2      # dragonfly topology group width

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError("need at least one node")
        if self.nodes_per_group < 1:
            raise ValueError("nodes_per_group must be >= 1")


class Platform:
    """A fully wired rFaaS platform instance; construct via :meth:`build`."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        drc: DrcManager,
        fabric: NetworkFabric,
        loads: NodeLoadRegistry,
        manager: ResourceManager,
        functions: FunctionRegistry,
        spec: ClusterSpec,
        seed: int,
        injector: Optional[Injector] = None,
        cloud_config: Optional[CloudConfig] = None,
        durable_memory: Optional[ReplicatedMemoryService] = None,
        gpuservice: Optional[GpuService] = None,
        controlplane: Optional[ReplicatedResourceManager] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.drc = drc
        self.fabric = fabric
        self.loads = loads
        self.manager = manager
        self.functions = functions
        self.spec = spec
        self.seed = seed
        self.injector = injector
        self.durable_memory = durable_memory
        self.gpuservice = gpuservice
        self.controlplane = controlplane
        self.capacity: Optional[CapacityPlane] = None
        self._cloud: Optional[CloudFaaSPlatform] = None
        self._cloud_config = cloud_config
        self._controller: Optional[DisaggregationController] = None

    @classmethod
    def build(
        cls,
        cluster_spec: Optional[ClusterSpec] = None,
        seed: int = 0,
        telemetry: Any = None,
        faults: Optional[FaultPlan] = None,
        capacity: Any = None,
        cloud: Any = None,
        durable_memory: Any = None,
        gpu: Any = None,
        ha: Any = None,
    ) -> "Platform":
        """Construct environment, cluster, fabric, manager, and registry.

        ``telemetry`` may be ``None`` (default resolution: an active
        collector, else the no-op null telemetry), ``True`` (a fresh
        :class:`Telemetry` pinned to this environment), a
        :class:`TelemetryCollector` (this environment joins its scopes),
        or a :class:`Telemetry` instance (pinned as-is).

        ``faults`` is a :class:`FaultPlan`; a non-empty plan gets a
        seeded :class:`Injector` that is started immediately, so its
        faults fire as the simulation runs.  An empty or absent plan
        changes nothing about the run.

        ``cloud`` configures the FaaS baseline at ``platform.cloud``:
        ``None`` builds one lazily on first access with defaults,
        ``True`` builds it eagerly, a :class:`CloudConfig` builds it
        eagerly with that config.  ``capacity`` does the same for the
        capacity plane at ``platform.capacity``: ``None`` means no
        plane, ``True`` a default :class:`CapacityConfig`, or pass a
        :class:`CapacityConfig`.  The plane's autoscaler loop is started
        immediately; call ``platform.capacity.stop()`` before draining
        the event queue with an open-ended ``run()``.

        ``durable_memory`` builds the replicated memory service at
        ``platform.durable_memory``: ``True`` with defaults, or pass a
        :class:`~repro.memservice.DurableMemoryConfig`.  The service is
        started (chunks placed and allocated), subscribed to the
        manager's reclaim events, and handed to the fault injector so
        ``memservice_kill`` events find it.  Its repair loop ticks
        forever — call ``platform.durable_memory.stop()`` before
        draining the event queue with an open-ended ``run()``.

        ``gpu`` builds the GPU control plane at ``platform.gpu``:
        ``True`` with defaults, or pass a
        :class:`~repro.gpuservice.GpuServiceConfig`.  The service is
        started and handed to the fault injector so
        ``gpu_device_loss`` events find it.  When its config enables
        the warm-context autoscaler, call ``platform.gpu.stop()``
        before draining the event queue with an open-ended ``run()``.

        ``ha`` replicates the resource manager: ``True`` with a default
        :class:`~repro.controlplane.HAConfig` (one standby), or pass an
        ``HAConfig``.  ``platform.manager`` then *is* the
        :class:`~repro.controlplane.ReplicatedResourceManager` — every
        downstream consumer (clients, capacity plane, injector,
        durable memory) rides the replicated front door, and
        ``manager_crash`` / ``manager_partition`` fault events find it.
        Its heartbeat/failure-detector loop is started immediately; call
        ``platform.ha.stop()`` before draining the event queue with an
        open-ended ``run()``.
        """
        spec = cluster_spec if cluster_spec is not None else ClusterSpec()
        env = Environment()
        if telemetry is True:
            Telemetry(env=env).install(env)
        elif isinstance(telemetry, TelemetryCollector):
            install(env, telemetry.scope_for(env))
        elif isinstance(telemetry, Telemetry):
            install(env, telemetry)
        elif telemetry is not None:
            raise TypeError(
                "telemetry must be None, True, a Telemetry, or a TelemetryCollector"
            )
        cluster = Cluster(
            topology=DragonflyTopology(nodes_per_group=spec.nodes_per_group)
        )
        cluster.add_nodes(spec.prefix, spec.nodes, spec.node_spec)
        drc = DrcManager()
        provider = spec.provider
        if spec.jitter is not None:
            provider = _dc_replace(
                provider, params=provider.params.with_jitter(spec.jitter)
            )
        fabric = NetworkFabric(
            env, cluster, provider, rng=np.random.default_rng(seed), drc=drc
        )
        loads = NodeLoadRegistry(cluster)
        manager = ResourceManager(
            env, cluster, loads=loads, drc=drc,
            rng=np.random.default_rng(seed + 1),
        )
        controlplane = None
        if ha is not None:
            if ha is True:
                ha_config = HAConfig()
            elif isinstance(ha, HAConfig):
                ha_config = ha
            else:
                raise TypeError("ha must be None, True, or an HAConfig")
            controlplane = ReplicatedResourceManager(env, manager, config=ha_config)
            controlplane.start()
            # Everything downstream uses the replicated front door.
            manager = controlplane
        functions = FunctionRegistry()
        durable = None
        if durable_memory is not None:
            if durable_memory is True:
                durable_config = DurableMemoryConfig()
            elif isinstance(durable_memory, DurableMemoryConfig):
                durable_config = durable_memory
            else:
                raise TypeError(
                    "durable_memory must be None, True, or a DurableMemoryConfig"
                )
            durable = ReplicatedMemoryService(
                env, cluster, fabric, config=durable_config, loads=loads,
            )
            durable.attach_manager(manager)
            durable.start()
        gpuservice = None
        if gpu is not None:
            if gpu is True:
                gpu_config = GpuServiceConfig()
            elif isinstance(gpu, GpuServiceConfig):
                gpu_config = gpu
            else:
                raise TypeError("gpu must be None, True, or a GpuServiceConfig")
            gpuservice = GpuService(env, cluster, config=gpu_config)
            gpuservice.start()
        injector = None
        if faults is not None and not faults.empty:
            injector = Injector(env, faults, manager, fabric=fabric,
                                seed=seed + 2, memservice=durable,
                                gpuservice=gpuservice)
            injector.start()
        cloud_config: Optional[CloudConfig] = None
        build_cloud = False
        if isinstance(cloud, CloudConfig):
            cloud_config, build_cloud = cloud, True
        elif cloud is True:
            build_cloud = True
        elif cloud is not None:
            raise TypeError("cloud must be None, True, or a CloudConfig")
        platform = cls(
            env=env, cluster=cluster, drc=drc, fabric=fabric, loads=loads,
            manager=manager, functions=functions, spec=spec, seed=seed,
            injector=injector, cloud_config=cloud_config,
            durable_memory=durable, gpuservice=gpuservice,
            controlplane=controlplane,
        )
        if build_cloud:
            platform.cloud  # noqa: B018 - force eager construction
        if capacity is not None:
            if capacity is True:
                capacity = CapacityConfig()
            elif not isinstance(capacity, CapacityConfig):
                raise TypeError("capacity must be None, True, or a CapacityConfig")
            platform.capacity = CapacityPlane(
                env, manager, cluster, functions,
                cloud=platform.cloud if capacity.burst_enabled else None,
                config=capacity,
            )
            platform.capacity.start()
        return platform

    # -- conveniences -------------------------------------------------------
    @property
    def telemetry(self):
        """The telemetry handle of this platform's environment."""
        return telemetry_of(self.env)

    @property
    def cloud(self) -> CloudFaaSPlatform:
        """The cloud FaaS baseline (built lazily; gateway rng = seed + 3)."""
        if self._cloud is None:
            self._cloud = CloudFaaSPlatform(
                self.env, config=self._cloud_config,
                rng=np.random.default_rng(self.seed + 3),
            )
        return self._cloud

    @property
    def gpu(self) -> GpuService:
        """The GPU control plane (requires ``gpu=`` at build time)."""
        if self.gpuservice is None:
            raise RuntimeError(
                "platform was built without a GPU service; pass gpu=True "
                "(or a GpuServiceConfig) to build()"
            )
        return self.gpuservice

    @property
    def ha(self) -> ReplicatedResourceManager:
        """The replicated control plane (requires ``ha=`` at build time)."""
        if self.controlplane is None:
            raise RuntimeError(
                "platform was built without a replicated control plane; "
                "pass ha=True (or an HAConfig) to build()"
            )
        return self.controlplane

    @property
    def controller(self) -> Optional[DisaggregationController]:
        """The attached disaggregation controller (None until attached)."""
        return self._controller

    def attach_controller(
        self,
        scheduler,
        config: Optional[ControllerConfig] = None,
        demand_resolver=None,
    ) -> DisaggregationController:
        """Bridge a batch scheduler onto this platform's manager.

        Builds (once) the :class:`DisaggregationController` that turns
        the scheduler's job events into ``register_node``/``remove_node``
        calls — the wiring every harvest experiment used to do by hand.
        """
        if self._controller is not None:
            raise RuntimeError("a controller is already attached")
        self._controller = DisaggregationController(
            scheduler, self.manager, config=config,
            demand_resolver=demand_resolver,
        )
        return self._controller

    def register_node(self, node_name: str, **kwargs):
        """Donate a node's spare capacity (see ``ResourceManager.register_node``)."""
        return self.manager.register_node(node_name, **kwargs)

    def client(self, node: str, **kwargs) -> RFaaSClient:
        """A client application invoking functions from ``node``."""
        return RFaaSClient(
            self.env, self.manager, self.fabric, self.functions,
            client_node=node, **kwargs,
        )

    def memory_client(self, node: str, user: str = "app") -> DurableMemoryClient:
        """A failover-aware client of the durable memory service."""
        if self.durable_memory is None:
            raise RuntimeError(
                "platform was built without durable_memory; pass "
                "durable_memory=True (or a DurableMemoryConfig) to build()"
            )
        return DurableMemoryClient(
            self.env, self.fabric, self.durable_memory, client_node=node,
            user=user,
        )

    def process(self, generator, name: Optional[str] = None):
        """Schedule a simulation process (delegates to the environment)."""
        return self.env.process(generator, name=name)

    def run_until(self, until: Optional[float] = None):
        """Advance the simulation (to ``until``, or until the queue drains)."""
        return self.env.run(until=until)

    def run(self):
        return self.env.run()
