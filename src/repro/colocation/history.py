"""Global co-location history (Sec. III-E, Fig. 4).

HPC systems serve a limited application catalog (~25 apps cover two
thirds of core-hours), so the serverless resource manager can afford a
global history: "for each co-location, we record the runtime of the batch
job and the function, and compare it later against an exclusive run with
the same parameters."  The history is the *primary* metric for estimating
interference; the requirements-model heuristic is the cold-start
fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["CoLocationRecord", "HistoryDB"]


@dataclass(frozen=True)
class CoLocationRecord:
    """Outcome of one observed co-location."""

    batch_app: str
    function_app: str
    batch_slowdown: float      # co-located runtime / exclusive runtime
    function_slowdown: float

    def __post_init__(self):
        if self.batch_slowdown < 1.0 - 1e-6 or self.function_slowdown < 1.0 - 1e-6:
            raise ValueError("slowdowns must be >= 1 (ratio to exclusive run)")


class HistoryDB:
    """Per-(batch app, function app) slowdown history with running means."""

    def __init__(self):
        self._records: dict[tuple[str, str], list[CoLocationRecord]] = {}

    def __len__(self) -> int:
        return sum(len(v) for v in self._records.values())

    def record(self, record: CoLocationRecord) -> None:
        key = (record.batch_app, record.function_app)
        self._records.setdefault(key, []).append(record)

    def has(self, batch_app: str, function_app: str) -> bool:
        return (batch_app, function_app) in self._records

    def observations(self, batch_app: str, function_app: str) -> list[CoLocationRecord]:
        return list(self._records.get((batch_app, function_app), []))

    def expected_batch_slowdown(self, batch_app: str, function_app: str) -> Optional[float]:
        records = self._records.get((batch_app, function_app))
        if not records:
            return None
        return sum(r.batch_slowdown for r in records) / len(records)

    def expected_function_slowdown(self, batch_app: str, function_app: str) -> Optional[float]:
        records = self._records.get((batch_app, function_app))
        if not records:
            return None
        return sum(r.function_slowdown for r in records) / len(records)

    def worst_partners(self, batch_app: str, top: int = 5) -> list[tuple[str, float]]:
        """Function apps ranked by batch-job impact (worst first)."""
        scored = []
        for (b, f), records in self._records.items():
            if b != batch_app:
                continue
            mean = sum(r.batch_slowdown for r in records) / len(records)
            scored.append((f, mean))
        scored.sort(key=lambda item: -item[1])
        return scored[:top]
