"""Co-location policies: history, requirement models, admission."""

from .history import CoLocationRecord, HistoryDB
from .policy import CoLocationPolicy, Decision, PolicyConfig
from .requirements import PerformanceModel, RequirementModel, fit_performance_model

__all__ = [
    "CoLocationRecord",
    "HistoryDB",
    "CoLocationPolicy",
    "Decision",
    "PolicyConfig",
    "PerformanceModel",
    "RequirementModel",
    "fit_performance_model",
]
