"""Resource requirement modeling (the cold-start heuristic of Sec. III-E).

"When the history is unavailable for the first colocation instance, we
apply resource requirement modeling [Calotoiu'18]: counter measurements
create performance models for different resource classes, allowing us to
compare the stress factors for each application."

We implement the Extra-P-flavoured core of that method: for each resource
class (DRAM traffic, network traffic, FLOPs) fit a small model
``c * p^a * log2(p)^b`` over a parameter sweep of counter measurements,
then evaluate/extrapolate the *stress factor* — predicted demand relative
to node capacity — at the configuration being scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..interference.counters import CounterSample

__all__ = ["PerformanceModel", "fit_performance_model", "RequirementModel"]

# Candidate exponent grid, as in Extra-P's sparse search space.
_EXPONENTS = (0.0, 0.5, 1.0, 1.5, 2.0)
_LOG_POWERS = (0, 1)


@dataclass(frozen=True)
class PerformanceModel:
    """f(p) = coefficient * p^exponent * log2(p)^log_power."""

    coefficient: float
    exponent: float
    log_power: int
    residual: float

    def __call__(self, p: float) -> float:
        if p <= 0:
            raise ValueError("parameter must be positive")
        return self.coefficient * p**self.exponent * (np.log2(p) ** self.log_power if self.log_power else 1.0)


def fit_performance_model(params: Sequence[float], values: Sequence[float]) -> PerformanceModel:
    """Best single-term model over the candidate grid (least squares)."""
    p = np.asarray(params, dtype=float)
    y = np.asarray(values, dtype=float)
    if p.shape != y.shape or p.size < 2:
        raise ValueError("need >= 2 matching samples")
    if np.any(p <= 0):
        raise ValueError("parameters must be positive")
    best: Optional[PerformanceModel] = None
    for exponent in _EXPONENTS:
        for log_power in _LOG_POWERS:
            basis = p**exponent * (np.log2(p) ** log_power if log_power else 1.0)
            denom = float(basis @ basis)
            if denom == 0.0:
                continue
            coeff = float(basis @ y) / denom
            residual = float(np.sum((y - coeff * basis) ** 2))
            if best is None or residual < best.residual:
                best = PerformanceModel(coeff, exponent, log_power, residual)
    assert best is not None
    return best


class RequirementModel:
    """Per-resource-class performance models for one application."""

    RESOURCES = ("dram", "net", "flops")

    def __init__(self, app: str):
        self.app = app
        self._models: dict[str, PerformanceModel] = {}

    def fit(self, params: Sequence[float], samples_per_param: Sequence[Sequence[CounterSample]]) -> None:
        """Fit all resource classes from counter sweeps.

        ``samples_per_param[i]`` holds the counter windows measured at
        ``params[i]`` (e.g. problem size or rank count).
        """
        if len(params) != len(samples_per_param):
            raise ValueError("params and sample groups must align")
        dram, net, flops = [], [], []
        for group in samples_per_param:
            if not group:
                raise ValueError("empty sample group")
            dram.append(float(np.mean([s.dram_bandwidth for s in group])))
            net.append(float(np.mean([s.net_bandwidth for s in group])))
            flops.append(float(np.mean([s.flops / s.duration_s for s in group])))
        self._models["dram"] = fit_performance_model(params, dram)
        self._models["net"] = fit_performance_model(params, net)
        self._models["flops"] = fit_performance_model(params, flops)

    @property
    def fitted(self) -> bool:
        return set(self._models) == set(self.RESOURCES)

    def predict(self, resource: str, param: float) -> float:
        if resource not in self._models:
            raise KeyError(f"model for {resource!r} not fitted")
        return max(0.0, self._models[resource](param))

    def stress_factors(self, param: float, dram_capacity: float, net_capacity: float,
                       flops_capacity: float) -> dict[str, float]:
        """Predicted demand / capacity per resource class at ``param``."""
        return {
            "dram": self.predict("dram", param) / dram_capacity,
            "net": self.predict("net", param) / net_capacity,
            "flops": self.predict("flops", param) / flops_capacity,
        }

    def dominant_resource(self, param: float, dram_capacity: float, net_capacity: float,
                          flops_capacity: float) -> str:
        stress = self.stress_factors(param, dram_capacity, net_capacity, flops_capacity)
        return max(stress, key=stress.get)
