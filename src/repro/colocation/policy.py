"""Co-location admission policy (Sec. III-E / III-F, Fig. 4).

The decision pipeline the paper describes:

1. **Availability** — opt-in only: the batch job must consent (shared
   flag / shared partition) and the node must have the spare resources;
   GPUs are only handed out as whole free devices (GRES).
2. **Hero-job exemption** — jobs above a node-count threshold are never
   co-located (Sec. III-F: large jobs are noise-sensitive; most jobs use
   < 256 nodes, so targeting small/medium jobs captures the utilization
   win without risking scalability).
3. **History** — if this (batch app, function app) pair has run together
   before, admit iff the recorded batch slowdown is acceptable.
4. **Heuristic fallback** — no history: preview the interference model's
   predicted slowdowns for the candidate mix (the stress-factor
   comparison of resource requirement modeling) and admit iff the batch
   job stays under the threshold.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..cluster.node import Node
from ..interference.model import ResourceDemand
from ..rfaas.load import NodeLoadRegistry
from .history import CoLocationRecord, HistoryDB

__all__ = ["Decision", "PolicyConfig", "CoLocationPolicy"]


class Decision(enum.Enum):
    ADMIT = "admit"
    NO_CONSENT = "no_consent"
    NO_RESOURCES = "no_resources"
    HERO_JOB = "hero_job"
    HISTORY_REJECT = "history_reject"
    HEURISTIC_REJECT = "heuristic_reject"

    @property
    def admitted(self) -> bool:
        return self is Decision.ADMIT


@dataclass(frozen=True)
class PolicyConfig:
    """Thresholds for admission."""

    max_batch_slowdown: float = 1.05     # tolerate <= 5% batch impact
    hero_job_nodes: int = 256            # exempt jobs at/above this scale
    reserve_cores: int = 0               # cores kept free per node

    def __post_init__(self):
        if self.max_batch_slowdown < 1.0:
            raise ValueError("max_batch_slowdown must be >= 1")
        if self.hero_job_nodes < 1 or self.reserve_cores < 0:
            raise ValueError("invalid thresholds")


class CoLocationPolicy:
    """Decides whether a function may join a node."""

    def __init__(
        self,
        loads: NodeLoadRegistry,
        history: Optional[HistoryDB] = None,
        config: Optional[PolicyConfig] = None,
    ):
        self.loads = loads
        self.history = history if history is not None else HistoryDB()
        self.config = config or PolicyConfig()
        # Decision accounting for the ablation bench.
        self.decisions: dict[Decision, int] = {d: 0 for d in Decision}

    def _done(self, decision: Decision) -> Decision:
        self.decisions[decision] += 1
        return decision

    def decide(
        self,
        node: Node,
        candidate: ResourceDemand,
        batch_app: Optional[str],
        *,
        consent: bool = True,
        batch_nodes: int = 1,
        needs_gpus: int = 0,
        memory_bytes: int = 0,
    ) -> Decision:
        """Run the full admission pipeline for one candidate function."""
        # 1. Availability.
        if not consent:
            return self._done(Decision.NO_CONSENT)
        free_cores = node.free_cores - self.config.reserve_cores
        if (
            candidate.cores > free_cores
            or memory_bytes > node.free_memory
            or needs_gpus > len(node.free_gpu_ids)
        ):
            return self._done(Decision.NO_RESOURCES)
        # 2. Hero jobs are exempt from disaggregation.
        if batch_nodes >= self.config.hero_job_nodes:
            return self._done(Decision.HERO_JOB)
        # 3. History, the primary metric.
        if batch_app is not None and candidate.label and self.history.has(batch_app, candidate.label):
            expected = self.history.expected_batch_slowdown(batch_app, candidate.label)
            if expected > self.config.max_batch_slowdown:
                return self._done(Decision.HISTORY_REJECT)
            return self._done(Decision.ADMIT)
        # 4. Heuristic: preview the interference model.  The relevant
        # quantity is the *marginal* impact — predicted slowdown relative
        # to each tenant's current slowdown (a job already paying its own
        # frequency/cache costs must not have those counted against the
        # candidate).
        current = self.loads.slowdowns(node.name)
        preview = self.loads.preview_slowdown(node.name, candidate)
        worst_ratio = max(
            (preview[k] / current.get(k, 1.0) for k in preview if k != "<candidate>"),
            default=1.0,
        )
        if worst_ratio > self.config.max_batch_slowdown:
            return self._done(Decision.HEURISTIC_REJECT)
        return self._done(Decision.ADMIT)

    def observe(
        self,
        batch_app: str,
        function_app: str,
        batch_slowdown: float,
        function_slowdown: float,
    ) -> None:
        """Feed an observed co-location back into the history (Fig. 4)."""
        self.history.record(
            CoLocationRecord(
                batch_app=batch_app,
                function_app=function_app,
                batch_slowdown=batch_slowdown,
                function_slowdown=function_slowdown,
            )
        )
