"""Declarative fault plans.

A :class:`FaultPlan` is a list of :class:`FaultEvent` records — *what*
goes wrong, *when* (simulated seconds), *where* (a node, or "let the
injector pick"), and *how hard*.  Plans are plain data: they can be
built fluently in code, round-tripped through JSON for the ``repro
chaos`` CLI, and replayed deterministically — the plan itself contains
no randomness; every seeded choice (victim selection, message loss) is
made by the :class:`~repro.faults.injector.Injector` from its own named
rng stream.

Fault taxonomy (see ``docs/fault_injection.md``):

===================== =========================================================
kind                  meaning
===================== =========================================================
``node_crash``        executor node dies (``manager.remove_node``); in-flight
                      invocations get termination replies when ``immediate``;
                      with ``duration_s`` > 0 the node re-registers (cold
                      recovery) once it heals
``lease_storm``       the platform cancels up to ``count`` active leases at
                      once, forcing clients to redirect
``network_degrade``   interconnect latency × ``magnitude``, bandwidth ×
                      ``bandwidth_factor``, plus seeded ``drop_rate`` message
                      loss, for ``duration_s``
``network_partition`` the target node is unreachable for ``duration_s``;
                      transfers to/from it fail with ``TransferDropped``
``straggler``         the target executor picks work up ``magnitude`` × late
                      for ``duration_s``
``warmpool_pressure`` evict the LRU ``magnitude`` fraction of the target
                      node's warm containers (swap to PFS when ``swap``)
``memservice_kill``   every durable-memory chunk replica hosted on the target
                      node is destroyed instantly (the batch system took the
                      memory back without warning); background repair restores
                      the replication factor from surviving copies
``gpu_device_loss``   every GPU device on the target node is lost: fractional
                      leases are revoked (``GpuLeaseRevokedError``), queued and
                      in-flight batched invocations replay on surviving
                      devices; with ``duration_s`` > 0 the devices come back
                      *cold* (warm data gone) once the node heals
``manager_crash``     the control plane's primary resource manager dies; a
                      standby takes over after the failure detector's timeout
                      (``repro.controlplane``); with zero standbys all
                      control-plane state — and every outstanding lease — is
                      lost; ``duration_s`` > 0 restarts the crashed replica
``manager_partition`` the primary is cut off from clients *and* standbys: a
                      standby takes over behind the partition and the fenced
                      ex-primary steps down when the partition heals after
                      ``duration_s`` (no split brain)
===================== =========================================================
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Iterator, Optional

__all__ = ["FaultKind", "FaultEvent", "FaultPlan"]


class FaultKind:
    """Well-known fault kinds (the taxonomy of docs/fault_injection.md)."""

    NODE_CRASH = "node_crash"
    LEASE_STORM = "lease_storm"
    NETWORK_DEGRADE = "network_degrade"
    NETWORK_PARTITION = "network_partition"
    STRAGGLER = "straggler"
    WARMPOOL_PRESSURE = "warmpool_pressure"
    MEMSERVICE_KILL = "memservice_kill"
    GPU_DEVICE_LOSS = "gpu_device_loss"
    MANAGER_CRASH = "manager_crash"
    MANAGER_PARTITION = "manager_partition"

    ALL = (
        NODE_CRASH,
        LEASE_STORM,
        NETWORK_DEGRADE,
        NETWORK_PARTITION,
        STRAGGLER,
        WARMPOOL_PRESSURE,
        MEMSERVICE_KILL,
        GPU_DEVICE_LOSS,
        MANAGER_CRASH,
        MANAGER_PARTITION,
    )


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``magnitude`` is the kind's main knob: latency factor for
    ``network_degrade``, dispatch-delay multiplier for ``straggler``,
    eviction fraction for ``warmpool_pressure``; unused otherwise.
    """

    kind: str
    at_s: float
    duration_s: float = 0.0          # 0 = permanent (crash) or instantaneous
    node: Optional[str] = None       # None = injector picks a seeded victim
    magnitude: float = 1.0
    bandwidth_factor: float = 1.0    # network_degrade only
    drop_rate: float = 0.0           # network_degrade only
    count: int = 1                   # lease_storm only
    immediate: bool = True           # node_crash only
    swap: bool = True                # warmpool_pressure only

    def __post_init__(self):
        if self.kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind {self.kind!r} (one of {FaultKind.ALL})")
        if self.at_s < 0:
            raise ValueError("fault time must be non-negative")
        if self.duration_s < 0:
            raise ValueError("fault duration must be non-negative")
        if self.magnitude <= 0:
            raise ValueError("magnitude must be positive")
        if self.bandwidth_factor <= 0:
            raise ValueError("bandwidth_factor must be positive")
        if not 0.0 <= self.drop_rate <= 1.0:
            raise ValueError("drop_rate must be in [0, 1]")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.kind == FaultKind.WARMPOOL_PRESSURE and self.magnitude > 1.0:
            raise ValueError("warmpool_pressure magnitude is a fraction in (0, 1]")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        return cls(**data)


@dataclass
class FaultPlan:
    """An ordered schedule of faults, buildable fluently::

        plan = (FaultPlan(name="crash-and-storm")
                .node_crash(at_s=5.0, duration_s=20.0)
                .lease_storm(at_s=8.0, count=4)
                .network_degrade(at_s=12.0, duration_s=3.0, latency_factor=10.0))
    """

    events: list[FaultEvent] = field(default_factory=list)
    name: str = "plan"

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def empty(self) -> bool:
        return not self.events

    def sorted_events(self) -> list[FaultEvent]:
        """Events by injection time; ties keep plan order (stable)."""
        return sorted(self.events, key=lambda ev: ev.at_s)

    # -- fluent builders -----------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def node_crash(self, at_s: float, node: Optional[str] = None,
                   duration_s: float = 0.0, immediate: bool = True) -> "FaultPlan":
        return self.add(FaultEvent(FaultKind.NODE_CRASH, at_s, duration_s=duration_s,
                                   node=node, immediate=immediate))

    def lease_storm(self, at_s: float, count: int = 1) -> "FaultPlan":
        return self.add(FaultEvent(FaultKind.LEASE_STORM, at_s, count=count))

    def network_degrade(self, at_s: float, duration_s: float,
                        latency_factor: float = 1.0, bandwidth_factor: float = 1.0,
                        drop_rate: float = 0.0) -> "FaultPlan":
        return self.add(FaultEvent(FaultKind.NETWORK_DEGRADE, at_s,
                                   duration_s=duration_s, magnitude=latency_factor,
                                   bandwidth_factor=bandwidth_factor,
                                   drop_rate=drop_rate))

    def network_partition(self, at_s: float, duration_s: float,
                          node: Optional[str] = None) -> "FaultPlan":
        return self.add(FaultEvent(FaultKind.NETWORK_PARTITION, at_s,
                                   duration_s=duration_s, node=node))

    def straggler(self, at_s: float, duration_s: float, multiplier: float = 10.0,
                  node: Optional[str] = None) -> "FaultPlan":
        return self.add(FaultEvent(FaultKind.STRAGGLER, at_s, duration_s=duration_s,
                                   node=node, magnitude=multiplier))

    def warmpool_pressure(self, at_s: float, fraction: float = 1.0,
                          node: Optional[str] = None, swap: bool = True) -> "FaultPlan":
        return self.add(FaultEvent(FaultKind.WARMPOOL_PRESSURE, at_s, node=node,
                                   magnitude=fraction, swap=swap))

    def memservice_kill(self, at_s: float, node: Optional[str] = None) -> "FaultPlan":
        return self.add(FaultEvent(FaultKind.MEMSERVICE_KILL, at_s, node=node))

    def gpu_device_loss(self, at_s: float, node: Optional[str] = None,
                        duration_s: float = 0.0) -> "FaultPlan":
        return self.add(FaultEvent(FaultKind.GPU_DEVICE_LOSS, at_s, node=node,
                                   duration_s=duration_s))

    def manager_crash(self, at_s: float, duration_s: float = 0.0,
                      shard: Optional[int] = None) -> "FaultPlan":
        """Kill a control-plane primary; with ``duration_s`` > 0 the
        replica restarts and rejoins.  Untargeted, the victim is
        whoever leads at injection time.  ``shard`` targets one shard
        of a :class:`~repro.shard.ShardedControlPlane` (encoded as
        ``node="shard-N"``; ignored by unsharded control planes)."""
        return self.add(FaultEvent(
            FaultKind.MANAGER_CRASH, at_s, duration_s=duration_s,
            node=None if shard is None else f"shard-{shard}",
        ))

    def manager_partition(self, at_s: float, duration_s: float = 0.0) -> "FaultPlan":
        """Cut the current primary off from clients and standbys; the
        partition heals after ``duration_s`` (0 = never)."""
        return self.add(FaultEvent(FaultKind.MANAGER_PARTITION, at_s,
                                   duration_s=duration_s))

    def shifted(self, offset_s: float) -> "FaultPlan":
        """A copy with every event delayed by ``offset_s``."""
        return FaultPlan(
            events=[replace(ev, at_s=ev.at_s + offset_s) for ev in self.events],
            name=self.name,
        )

    # -- (de)serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {"name": self.name, "events": [ev.to_dict() for ev in self.events]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            events=[FaultEvent.from_dict(ev) for ev in data.get("events", ())],
            name=data.get("name", "plan"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")
