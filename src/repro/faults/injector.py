"""The fault injector: replays a :class:`FaultPlan` against a live platform.

The injector is one simulation process that walks the plan in time
order and applies each fault through the *public hooks* of the layer it
targets — ``ResourceManager.remove_node`` / ``revoke_lease`` for
crashes and revocation storms, the fabric's
:class:`~repro.network.transport.LinkConditioner` for degradation and
partitions, ``Executor.dispatch_multiplier`` for stragglers,
``WarmPool.evict_fraction`` for memory pressure, and
``ReplicatedMemoryService.kill_node`` for durable-memory replica
destruction.  Nothing is
monkeypatched, so a fault-injected run exercises exactly the code paths
a real reclamation would.

Determinism contract: the injector draws every random choice (victim
node, storm victims, message-loss stream) from its own seeded rng, and
applies faults at plan-specified simulated times.  Same seed + same
plan ⇒ the same faults hit the same victims at the same instants, and
the whole run replays bit-identically (asserted by
``tests/faults/test_determinism.py``).  An *empty* plan schedules no
events and draws no randomness: the run is indistinguishable from one
without an injector.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..rfaas.errors import ManagerUnavailableError
from ..sim.engine import Environment, Process
from ..telemetry import telemetry_of
from .plan import FaultEvent, FaultKind, FaultPlan

__all__ = ["Injector"]


class Injector:
    """Schedules the faults of one plan onto one platform instance."""

    def __init__(
        self,
        env: Environment,
        plan: FaultPlan,
        manager,                      # ResourceManager (duck-typed)
        fabric=None,                  # NetworkFabric, for network faults
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
        memservice=None,              # ReplicatedMemoryService, for memservice faults
        gpuservice=None,              # GpuService, for gpu_device_loss faults
        controlplane=None,            # ReplicatedResourceManager, for manager faults
    ):
        self.env = env
        self.plan = plan
        self.manager = manager
        self.fabric = fabric
        self.memservice = memservice
        self.gpuservice = gpuservice
        # When the manager handed in *is* the replicated control plane,
        # the manager fault kinds target it directly.
        if controlplane is None and hasattr(manager, "crash_primary"):
            controlplane = manager
        self.controlplane = controlplane
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self._process: Optional[Process] = None
        #: (time, kind, target) triples of faults actually applied.
        self.injected: list[tuple[float, str, Optional[str]]] = []
        #: events that found no viable target (e.g. nothing registered).
        self.skipped: list[FaultEvent] = []
        needs_fabric = {FaultKind.NETWORK_DEGRADE, FaultKind.NETWORK_PARTITION}
        if fabric is None and any(ev.kind in needs_fabric for ev in plan):
            raise ValueError("plan contains network faults but no fabric was given")
        telemetry = telemetry_of(env)
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_injected = {
            kind: metrics.counter(
                "repro_faults_injected_total", labels={"kind": kind},
                help="faults applied, by kind",
            )
            for kind in FaultKind.ALL
        }
        self._m_recoveries = metrics.counter(
            "repro_faults_node_recoveries_total",
            help="crashed nodes re-registered after their outage window",
        )

    # -- lifecycle -----------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._process is not None

    def start(self) -> Optional[Process]:
        """Schedule the plan; returns the driver process (None if empty).

        An empty plan is a guaranteed no-op: no process, no events, no
        random draws — the simulation replays exactly as without an
        injector.
        """
        if self._process is not None:
            raise RuntimeError("injector already started")
        if self.plan.empty:
            return None
        self._process = self.env.process(
            self._drive(), name=f"fault-injector:{self.plan.name}"
        )
        return self._process

    def _drive(self):
        for event in self.plan.sorted_events():
            delay = event.at_s - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._apply(event)
        return len(self.injected)

    # -- application ---------------------------------------------------------
    def _note(self, event: FaultEvent, target: Optional[str], **attrs) -> None:
        self.injected.append((self.env.now, event.kind, target))
        self._m_injected[event.kind].inc()
        self._tracer.instant(
            f"fault.{event.kind}", track="faults", node=target, **attrs
        )

    def _pick_node(self, event: FaultEvent) -> Optional[str]:
        """The event's target node, or a seeded pick among registered ones."""
        if event.node is not None:
            return event.node if self.manager.is_registered(event.node) else None
        candidates = self.manager.registered_nodes()   # sorted, deterministic
        if not candidates:
            return None
        return candidates[int(self.rng.integers(len(candidates)))]

    def _apply(self, event: FaultEvent) -> None:
        handler = {
            FaultKind.NODE_CRASH: self._apply_node_crash,
            FaultKind.LEASE_STORM: self._apply_lease_storm,
            FaultKind.NETWORK_DEGRADE: self._apply_network_degrade,
            FaultKind.NETWORK_PARTITION: self._apply_network_partition,
            FaultKind.STRAGGLER: self._apply_straggler,
            FaultKind.WARMPOOL_PRESSURE: self._apply_warmpool_pressure,
            FaultKind.MEMSERVICE_KILL: self._apply_memservice_kill,
            FaultKind.GPU_DEVICE_LOSS: self._apply_gpu_device_loss,
            FaultKind.MANAGER_CRASH: self._apply_manager_crash,
            FaultKind.MANAGER_PARTITION: self._apply_manager_partition,
        }[event.kind]
        try:
            handler(event)
        except ManagerUnavailableError:
            # The event needed the control plane mid-outage (e.g. a
            # lease storm while the primary is down): deterministic
            # skip — the manager could not have served it either way.
            self.skipped.append(event)

    def _apply_node_crash(self, event: FaultEvent) -> None:
        node = self._pick_node(event)
        if node is None:
            self.skipped.append(event)
            return
        registration = self.manager.registration_of(node)
        self.manager.remove_node(node, immediate=event.immediate)
        self._note(event, node, immediate=event.immediate,
                   duration=event.duration_s)
        if event.duration_s > 0:
            self.env.process(
                self._recover_node(registration, event.duration_s),
                name=f"fault-recover:{node}",
            )

    def _recover_node(self, registration: dict, outage_s: float):
        yield self.env.timeout(outage_s)
        node = registration["node_name"]
        if self.manager.is_registered(node):
            return  # someone else brought it back
        try:
            self.manager.register_node(**registration)
        except Exception:
            # The batch system took the capacity while the node was
            # down; the crash becomes permanent for this run.
            self._tracer.instant("fault.recovery_failed", track="faults", node=node)
            return
        self._m_recoveries.inc()
        self._tracer.instant("fault.node_recovered", track="faults", node=node)

    def _apply_lease_storm(self, event: FaultEvent) -> None:
        leases = self.manager.active_leases()  # ordered by lease id
        if not leases:
            self.skipped.append(event)
            return
        count = min(event.count, len(leases))
        picks = self.rng.choice(len(leases), size=count, replace=False)
        for index in sorted(int(i) for i in picks):
            lease, _node = leases[index]
            self.manager.revoke_lease(lease, reason="storm")
        self._note(event, None, revoked=count)

    def _apply_network_degrade(self, event: FaultEvent) -> None:
        conditioner = self.fabric.conditioner
        conditioner.degrade(
            latency_factor=event.magnitude,
            bandwidth_factor=event.bandwidth_factor,
        )
        if event.drop_rate > 0:
            loss_rng = np.random.default_rng(int(self.rng.integers(2**32)))
            conditioner.set_loss(event.drop_rate, rng=loss_rng)
        self._note(event, None, latency_factor=event.magnitude,
                   bandwidth_factor=event.bandwidth_factor,
                   drop_rate=event.drop_rate, duration=event.duration_s)
        if event.duration_s > 0:
            self.env.process(self._restore_network(event.duration_s),
                             name="fault-restore:network")

    def _restore_network(self, duration_s: float):
        yield self.env.timeout(duration_s)
        self.fabric.conditioner.restore()
        self._tracer.instant("fault.network_restored", track="faults")

    def _apply_network_partition(self, event: FaultEvent) -> None:
        node = self._pick_node(event)
        if node is None:
            self.skipped.append(event)
            return
        self.fabric.conditioner.partition([node])
        self._note(event, node, duration=event.duration_s)
        if event.duration_s > 0:
            self.env.process(self._heal_partition(node, event.duration_s),
                             name=f"fault-heal:{node}")

    def _heal_partition(self, node: str, duration_s: float):
        yield self.env.timeout(duration_s)
        self.fabric.conditioner.heal([node])
        self._tracer.instant("fault.partition_healed", track="faults", node=node)

    def _apply_straggler(self, event: FaultEvent) -> None:
        node = self._pick_node(event)
        if node is None:
            self.skipped.append(event)
            return
        executor = self.manager.node_info(node).executor
        executor.dispatch_multiplier = event.magnitude
        self._note(event, node, multiplier=event.magnitude,
                   duration=event.duration_s)
        if event.duration_s > 0:
            self.env.process(self._unstraggle(executor, node, event.duration_s),
                             name=f"fault-unstraggle:{node}")

    def _unstraggle(self, executor, node: str, duration_s: float):
        yield self.env.timeout(duration_s)
        executor.dispatch_multiplier = 1.0
        self._tracer.instant("fault.straggler_healed", track="faults", node=node)

    def _apply_warmpool_pressure(self, event: FaultEvent) -> None:
        node = self._pick_node(event)
        if node is None:
            self.skipped.append(event)
            return
        pool = self.manager.node_info(node).warm_pool
        freed = pool.evict_fraction(event.magnitude, swap=event.swap)
        self._note(event, node, fraction=event.magnitude, freed_bytes=freed)

    def _apply_memservice_kill(self, event: FaultEvent) -> None:
        """Destroy every durable-memory replica on one hosting node.

        The victim comes from the service's *hosting* set (sorted, so the
        seeded pick is deterministic), not the executor registry — memory
        service buffers live wherever placement put them.
        """
        service = self.memservice
        if service is None:
            self.skipped.append(event)
            return
        hosts = service.hosting_nodes()
        if event.node is not None:
            node = event.node if event.node in hosts else None
        elif hosts:
            node = hosts[int(self.rng.integers(len(hosts)))]
        else:
            node = None
        if node is None:
            self.skipped.append(event)
            return
        lost = service.kill_node(node, cause=FaultKind.MEMSERVICE_KILL)
        self._note(event, node, replicas_lost=lost)

    def _apply_gpu_device_loss(self, event: FaultEvent) -> None:
        """Lose every GPU device on one hosting node.

        Like ``memservice_kill``, the victim comes from the GPU service's
        *hosting* set (sorted, so the seeded pick is deterministic):
        devices live wherever the service config placed them, not in the
        executor registry.  The service revokes the devices' fractional
        leases and replays queued/in-flight batches on survivors.
        """
        service = self.gpuservice
        if service is None:
            self.skipped.append(event)
            return
        hosts = service.hosting_nodes()
        if event.node is not None:
            node = event.node if event.node in hosts else None
        elif hosts:
            node = hosts[int(self.rng.integers(len(hosts)))]
        else:
            node = None
        if node is None:
            self.skipped.append(event)
            return
        lost = service.lose_node(node, cause=FaultKind.GPU_DEVICE_LOSS)
        self._note(event, node, devices_lost=lost, duration=event.duration_s)
        if event.duration_s > 0:
            self.env.process(self._restore_gpu_node(node, event.duration_s),
                             name=f"fault-gpu-restore:{node}")

    def _restore_gpu_node(self, node: str, outage_s: float):
        yield self.env.timeout(outage_s)
        restored = self.gpuservice.restore_node(node)
        if restored:
            self._tracer.instant("fault.gpu_node_restored", track="faults",
                                 node=node, devices=restored)

    def _apply_manager_crash(self, event: FaultEvent) -> None:
        """Kill a control-plane primary replica.

        Untargeted (``event.node`` unset), the victim is whoever leads
        *at injection time* — no seeded pick, since a replicated manager
        has exactly one primary.  Against a sharded control plane
        (:mod:`repro.shard`) the event may name ``"shard-N"``
        (``FaultPlan.manager_crash(shard=N)``) to kill that shard's
        manager specifically.  Skipped when the platform runs a bare
        unreplicated manager, no primary is up to kill, or the shard
        target does not resolve.
        """
        if self.controlplane is None:
            self.skipped.append(event)
            return
        target = event.node
        if target is not None and target.startswith("shard-"):
            if not hasattr(self.controlplane, "crash_shard"):
                self.skipped.append(event)
                return
            index = int(target.removeprefix("shard-"))
            if not 0 <= index < len(self.controlplane.shards):
                self.skipped.append(event)
                return
            victim = self.controlplane.crash_shard(index, outage_s=event.duration_s)
        else:
            victim = self.controlplane.crash_primary(outage_s=event.duration_s)
        if victim is None:
            self.skipped.append(event)
            return
        self._note(event, victim, duration=event.duration_s)

    def _apply_manager_partition(self, event: FaultEvent) -> None:
        """Cut the current primary off from clients and standbys."""
        if self.controlplane is None:
            self.skipped.append(event)
            return
        victim = self.controlplane.partition_primary(heal_after_s=event.duration_s)
        if victim is None:
            self.skipped.append(event)
            return
        self._note(event, victim, duration=event.duration_s)
