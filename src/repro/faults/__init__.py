"""Fault injection and failure recovery for the rFaaS platform model.

Two halves, one subsystem:

* **Injection** — :class:`FaultPlan` (declarative, JSON-serializable
  schedules of :class:`FaultEvent`\\ s) replayed by an
  :class:`Injector` through public hooks in the manager, fabric,
  executor, and warm pool.  See ``docs/fault_injection.md``.
* **Recovery** — :class:`RetryPolicy` (the client's attempt budget,
  backoff, deadline, and node-exclusion knobs) and
  :class:`DegradedResult` / :class:`RecoveryOutcome` (how an
  invocation actually concluded).

Plus **certification** — :func:`certify` runs seeded *randomized*
schedules over the whole taxonomy and checks control-plane invariants
(no silent drops, no double grants, single primary per epoch,
monotone epochs) on every run; see ``repro certify``.

This package never imports ``repro.rfaas.client`` at import time (the
client imports *us*); the certification harness builds a full
platform lazily inside :func:`certify`.
"""

from .certify import (
    CertifyReport,
    certify,
    check_conservation,
    check_epoch_monotonic,
    check_no_double_grant,
    check_single_primary,
    random_plan,
    run_invariants,
)
from .injector import Injector
from .plan import FaultEvent, FaultKind, FaultPlan
from .recovery import DegradedResult, RecoveryOutcome, RetryPolicy

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "Injector",
    "RetryPolicy",
    "RecoveryOutcome",
    "DegradedResult",
    "CertifyReport",
    "certify",
    "check_conservation",
    "check_epoch_monotonic",
    "check_no_double_grant",
    "check_single_primary",
    "random_plan",
    "run_invariants",
]
