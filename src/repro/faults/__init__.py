"""Fault injection and failure recovery for the rFaaS platform model.

Two halves, one subsystem:

* **Injection** — :class:`FaultPlan` (declarative, JSON-serializable
  schedules of :class:`FaultEvent`\\ s) replayed by an
  :class:`Injector` through public hooks in the manager, fabric,
  executor, and warm pool.  See ``docs/fault_injection.md``.
* **Recovery** — :class:`RetryPolicy` (the client's attempt budget,
  backoff, deadline, and node-exclusion knobs) and
  :class:`DegradedResult` / :class:`RecoveryOutcome` (how an
  invocation actually concluded).

This package never imports ``repro.rfaas.client`` (the client imports
*us*); it depends only on the error taxonomy and message types.
"""

from .injector import Injector
from .plan import FaultEvent, FaultKind, FaultPlan
from .recovery import DegradedResult, RecoveryOutcome, RetryPolicy

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "Injector",
    "RetryPolicy",
    "RecoveryOutcome",
    "DegradedResult",
]
