"""Client-side failure recovery: retry policies and degraded results.

This generalizes the redirect loop that used to live inline in
``RFaaSClient._invoke``: every invocation runs under a
:class:`RetryPolicy` (attempt budget, exponential backoff with seeded
jitter, an optional per-invocation deadline, and node-exclusion memory),
and callers who need more than a bare
:class:`~repro.rfaas.messages.InvocationResult` can ask for a
:class:`DegradedResult` that says *how* the invocation ended:
first-try success, recovered-after-retries, gave up, timed out, or
rejected for lack of capacity.

The default policy reproduces the historical client behaviour exactly —
``max_redirects`` attempts with zero backoff, no deadline — so existing
callers observe no change; fault-tolerant callers opt into backoff and
deadlines explicitly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily everywhere else: ``repro.rfaas.client`` imports
    # this module, so a module-level rfaas import here would be a cycle.
    from ..rfaas.messages import InvocationResult

__all__ = ["RetryPolicy", "RecoveryOutcome", "DegradedResult"]


class RecoveryOutcome(enum.Enum):
    """How an invocation's attempt loop concluded."""

    OK = "ok"                    # first attempt succeeded
    RECOVERED = "recovered"      # succeeded after >= 1 retry
    REJECTED = "rejected"        # no capacity anywhere (not retryable)
    GAVE_UP = "gave_up"          # attempt budget exhausted
    TIMED_OUT = "timed_out"      # per-invocation deadline elapsed


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the client's recovery loop.

    * ``max_attempts`` — total tries, including the first (so
      ``max_attempts=1`` disables redirects entirely);
    * ``backoff_base_s`` — wait before the first retry; doubles (by
      ``backoff_multiplier``) per further retry, capped at
      ``backoff_max_s``.  0 retries immediately (historical behaviour);
    * ``jitter_frac`` — ±fraction of uniform, *seeded* jitter applied to
      each backoff (requires the client to hold an rng);
    * ``timeout_s`` — per-invocation deadline across all attempts; on
      expiry a running execution is aborted and the invocation reports
      ``TIMED_OUT``.  ``None`` disables;
    * ``exclude_failed_nodes`` — remember nodes that terminated or
      dropped us and lease elsewhere on retry.
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.0
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 10.0
    jitter_frac: float = 0.0
    timeout_s: Optional[float] = None
    exclude_failed_nodes: bool = True

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError("jitter_frac must be in [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")

    @classmethod
    def from_redirects(cls, max_redirects: int) -> "RetryPolicy":
        """The policy equivalent of the legacy ``max_redirects`` knob."""
        if max_redirects < 0:
            raise ValueError("max_redirects must be non-negative")
        return cls(max_attempts=max_redirects + 1)

    @property
    def max_redirects(self) -> int:
        return self.max_attempts - 1

    def backoff(self, retry_index: int,
                rng: Optional[np.random.Generator] = None) -> float:
        """Seconds to wait before retry number ``retry_index`` (1-based)."""
        if retry_index < 1:
            raise ValueError("retry_index is 1-based")
        if self.backoff_base_s <= 0:
            return 0.0
        delay = self.backoff_base_s * self.backoff_multiplier ** (retry_index - 1)
        delay = min(delay, self.backoff_max_s)
        if self.jitter_frac > 0:
            if rng is None:
                raise ValueError("jittered backoff requires a seeded rng")
            delay *= 1.0 + self.jitter_frac * float(rng.uniform(-1.0, 1.0))
        return delay


@dataclass
class DegradedResult:
    """An invocation result plus the story of how it got there."""

    result: "InvocationResult"
    outcome: RecoveryOutcome
    attempts: int                 # leases tried (>= 1 unless rejected up front)
    retries: int                  # attempts - successful first try
    elapsed_s: float              # invoke() call to completion
    recovery_s: float = 0.0       # first failure to completion (0 = no failure)
    backoff_s: float = 0.0        # total time spent waiting between attempts
    error: Optional[Exception] = None   # last platform error observed

    @property
    def ok(self) -> bool:
        return self.result.ok

    @property
    def degraded(self) -> bool:
        """Did recovery machinery have to engage at all?"""
        return self.outcome is not RecoveryOutcome.OK

    def describe(self) -> str:
        parts = [f"{self.outcome.value} after {self.attempts} attempt(s)"]
        if self.retries:
            parts.append(f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}")
        if self.recovery_s:
            parts.append(f"recovery {self.recovery_s * 1e3:.3f} ms")
        if self.error is not None:
            kind = type(self.error).__name__
            parts.append(f"last error {kind}")
        return ", ".join(parts)


def classify_error(error: Exception) -> str:
    """Short label for telemetry attributes (stable across runs)."""
    from ..rfaas.errors import RFaaSError  # local: avoids an import cycle

    if isinstance(error, RFaaSError):
        return type(error).__name__
    return "TransportError"
