"""Chaos certification: invariants under randomized fault schedules.

The hand-written fault tests of PRs 2–8 each pin one scenario; this
module makes chaos coverage *systematic*.  It has two halves:

* **Invariant checkers** — pure functions over the evidence a run
  leaves behind (the control plane's fenced commit log, its election
  history, the client-side outcome census).  Each returns a list of
  human-readable violations, empty when the invariant held:

  - :func:`check_conservation` — *no silent drops*: every invocation
    that started concluded with exactly one recovery outcome;
  - :func:`check_no_double_grant` — replaying the commit log never
    grants the same lease id twice nor over-commits a node's
    registered cores;
  - :func:`check_single_primary` — epochs elect at most one leader
    each, epochs only move forward, and at most one replica ends the
    run as primary;
  - :func:`check_epoch_monotonic` — the fenced log's epoch stamps are
    non-decreasing in commit order (a stale-epoch write that slipped
    the fence would show up here).

* **A certification harness** — :func:`certify` runs ``budget`` seeded
  *randomized* schedules drawn over the full fault taxonomy (node
  crashes, lease storms, network faults, stragglers, warm-pool
  pressure, memservice kills, GPU device loss, manager crashes and
  partitions) against a fully loaded platform (replicated control
  plane + durable memory + GPU service + invocation and paging
  streams), then evaluates every invariant on every run.  Same
  ``seed`` + ``budget`` ⇒ identical schedules, identical verdicts.

Exposed as ``repro certify`` on the CLI; CI runs a short budget on
every push.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from .plan import FaultKind, FaultPlan

__all__ = [
    "CertifyReport",
    "certify",
    "check_conservation",
    "check_epoch_monotonic",
    "check_no_double_grant",
    "check_single_primary",
    "random_plan",
    "run_invariants",
]

MiB = 1024**2
GiB = 1024**3


# -- invariant checkers (pure functions over run evidence) -------------------

def check_conservation(started: int, outcomes: Mapping[str, int]) -> list[str]:
    """No silent drops: every started invocation concluded exactly once."""
    concluded = sum(outcomes.values())
    if concluded != started:
        return [
            f"conservation: {started} invocations started but {concluded} "
            f"concluded ({dict(sorted(outcomes.items()))})"
        ]
    return []


def check_no_double_grant(log: Sequence) -> list[str]:
    """Replay the fenced commit log; no lease id may be granted twice and
    no node may hold more granted cores than it registered."""
    problems: list[str] = []
    capacity: dict[str, int] = {}
    outstanding: dict[str, int] = {}
    active: dict[int, tuple[str, int]] = {}
    for record in log:
        payload = record.payload
        if record.op == "register":
            node = payload["node"]
            if node in capacity:
                problems.append(
                    f"log[{record.index}]: node {node} registered twice"
                )
            capacity[node] = int(payload["registration"]["cores"])
            outstanding.setdefault(node, 0)
        elif record.op == "remove":
            node = payload["node"]
            capacity.pop(node, None)
            outstanding.pop(node, None)
            for lid in [lid for lid, (n, _) in active.items() if n == node]:
                del active[lid]
        elif record.op == "grant":
            lid = payload["lease_id"]
            node = payload["node"]
            cores = int(payload["cores"])
            if lid in active:
                problems.append(
                    f"log[{record.index}]: lease {lid} granted while already "
                    f"active on {active[lid][0]} (double grant)"
                )
                continue
            if node not in capacity:
                problems.append(
                    f"log[{record.index}]: lease {lid} granted on "
                    f"unregistered node {node}"
                )
                continue
            outstanding[node] = outstanding.get(node, 0) + cores
            active[lid] = (node, cores)
            if outstanding[node] > capacity[node]:
                problems.append(
                    f"log[{record.index}]: node {node} over-committed "
                    f"({outstanding[node]} cores granted > "
                    f"{capacity[node]} registered)"
                )
        elif record.op in ("revoke", "release"):
            entry = active.pop(payload["lease_id"], None)
            if entry is not None:
                node, cores = entry
                if node in outstanding:
                    outstanding[node] -= cores
    return problems


def check_single_primary(elections: Sequence, replicas: Iterable = ()) -> list[str]:
    """Every epoch has exactly one winner and epochs only move forward."""
    problems: list[str] = []
    seen: dict[int, int] = {}
    last_epoch = 0
    for election in elections:
        if election.epoch in seen:
            problems.append(
                f"epoch {election.epoch} elected twice "
                f"(rm-{seen[election.epoch]} and rm-{election.rank})"
            )
        seen[election.epoch] = election.rank
        if election.epoch <= last_epoch:
            problems.append(
                f"election for epoch {election.epoch} did not advance past "
                f"{last_epoch}"
            )
        last_epoch = max(last_epoch, election.epoch)
    primaries = [r for r in replicas if getattr(r.role, "value", None) == "primary"]
    if len(primaries) > 1:
        problems.append(
            "split brain: "
            + " and ".join(r.name for r in primaries)
            + " both ended the run as primary"
        )
    return problems


def check_epoch_monotonic(log: Sequence) -> list[str]:
    """Commit-log epoch stamps never go backwards."""
    problems: list[str] = []
    last = 0
    for record in log:
        if record.epoch < last:
            problems.append(
                f"log[{record.index}]: epoch went backwards "
                f"({last} -> {record.epoch}, op {record.op})"
            )
        last = max(last, record.epoch)
    return problems


def run_invariants(controlplane, started: int,
                   outcomes: Mapping[str, int]) -> dict[str, list[str]]:
    """Evaluate every invariant against one finished run's evidence."""
    return {
        "conservation": check_conservation(started, outcomes),
        "no_double_grant": check_no_double_grant(controlplane.commit_log),
        "single_primary": check_single_primary(controlplane.elections,
                                               controlplane.replicas),
        "epoch_monotonic": check_epoch_monotonic(controlplane.commit_log),
    }


# -- randomized schedules ----------------------------------------------------

def random_plan(rng: np.random.Generator, window_s: float = 8.0,
                events: int = 6, kinds: Sequence[str] = FaultKind.ALL,
                name: str = "certify") -> FaultPlan:
    """A seeded random fault schedule over (by default) the full taxonomy.

    Every draw comes from ``rng``, so the same generator state produces
    the same plan — the harness's determinism rests on this.  Times land
    in the first ~85 % of the window (late faults would outlive the
    measurement), durations heal within the window's slack.
    """
    plan = FaultPlan(name=name)
    for _ in range(events):
        kind = kinds[int(rng.integers(len(kinds)))]
        at_s = float(rng.uniform(0.1, 0.85)) * window_s
        duration = float(rng.uniform(0.1, 0.3)) * window_s
        if kind == FaultKind.NODE_CRASH:
            plan.node_crash(at_s=at_s, duration_s=duration,
                            immediate=bool(rng.integers(2)))
        elif kind == FaultKind.LEASE_STORM:
            plan.lease_storm(at_s=at_s, count=1 + int(rng.integers(6)))
        elif kind == FaultKind.NETWORK_DEGRADE:
            plan.network_degrade(
                at_s=at_s, duration_s=duration,
                latency_factor=float(rng.uniform(2.0, 10.0)),
                bandwidth_factor=float(rng.uniform(0.25, 1.0)),
                drop_rate=float(rng.uniform(0.0, 0.05)),
            )
        elif kind == FaultKind.NETWORK_PARTITION:
            plan.network_partition(at_s=at_s, duration_s=duration)
        elif kind == FaultKind.STRAGGLER:
            plan.straggler(at_s=at_s, duration_s=duration,
                           multiplier=float(rng.uniform(5.0, 30.0)))
        elif kind == FaultKind.WARMPOOL_PRESSURE:
            plan.warmpool_pressure(at_s=at_s,
                                   fraction=float(rng.uniform(0.25, 1.0)))
        elif kind == FaultKind.MEMSERVICE_KILL:
            plan.memservice_kill(at_s=at_s)
        elif kind == FaultKind.GPU_DEVICE_LOSS:
            plan.gpu_device_loss(at_s=at_s, duration_s=duration)
        elif kind == FaultKind.MANAGER_CRASH:
            plan.manager_crash(at_s=at_s, duration_s=duration)
        elif kind == FaultKind.MANAGER_PARTITION:
            plan.manager_partition(at_s=at_s, duration_s=duration)
        else:  # pragma: no cover - taxonomy drift guard
            raise ValueError(f"random_plan cannot draw kind {kind!r}")
    return plan


# -- the certification harness -----------------------------------------------

@dataclass
class CertifyReport:
    """Verdict of one certification campaign."""

    budget: int
    seed: int
    standbys: int
    window_s: float
    rows: list[dict] = field(default_factory=list)

    @property
    def violations(self) -> list[str]:
        out = []
        for row in self.rows:
            for invariant, problems in row["invariants"].items():
                out.extend(
                    f"{row['schedule']}: [{invariant}] {p}" for p in problems
                )
        return out

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "budget": self.budget,
            "seed": self.seed,
            "standbys": self.standbys,
            "window_s": self.window_s,
            "ok": self.ok,
            "rows": self.rows,
            "violations": self.violations,
        }

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def format_report(self) -> str:
        from ..analysis.tables import render_table

        rows = []
        for row in self.rows:
            bad = sum(len(v) for v in row["invariants"].values())
            rows.append([
                row["schedule"], row["events"], row["injected"],
                row["skipped"], row["invocations"],
                f"{row['completion_ratio'] * 100:.1f}%",
                row["epochs"], "PASS" if bad == 0 else f"{bad} VIOLATION(S)",
            ])
        table = render_table(
            ["schedule", "events", "injected", "skipped", "invocations",
             "completed", "epochs", "verdict"],
            rows,
            title=(f"Chaos certification — {self.budget} randomized "
                   f"schedules, k={self.standbys} standbys"),
        )
        tail = ("all invariants held" if self.ok
                else "\n".join(self.violations))
        return f"{table}\n{tail}"


def _stream(env, client, outcomes, counters, window_s: float):
    """Paced closed-loop invocations; never spins on a dead platform."""
    while env.now < window_s:
        counters["started"] += 1
        detailed = yield client.invoke_detailed("noop", payload_bytes=256)
        outcomes.append(detailed)
        yield env.timeout(0.005)


def _paging_stream(env, pager, window_s: float):
    from ..rfaas.errors import DataLossError, MemoryServiceUnavailable

    page = 0
    while env.now < window_s:
        yield env.timeout(0.05)
        try:
            yield pager.touch(page % pager.total_pages, dirty=(page % 2 == 0))
        except (DataLossError, MemoryServiceUnavailable):
            pass  # durability outcomes are the memdurability sweep's job
        page += 1


def certify(budget: int = 5, seed: int = 0, standbys: int = 1,
            window_s: float = 8.0, events_per_schedule: int = 6,
            heartbeat_interval_s: float = 0.1, suspect_after: int = 3,
            kinds: Optional[Sequence[str]] = None) -> CertifyReport:
    """Run ``budget`` randomized schedules and check every invariant.

    Each schedule gets its own derived rng (``default_rng((seed, i))``)
    and its own platform: replicated manager (``standbys`` standbys),
    durable memory (k=2), GPU service, three invocation streams, and a
    remote-paging stream — so a random schedule always finds a target
    no matter which taxonomy row it draws.
    """
    # Imported here, not at module top: repro.api imports this package.
    from ..api import ClusterSpec, Platform
    from ..containers import Image
    from ..controlplane import HAConfig
    from ..interference import ResourceDemand
    from ..memservice import DurableMemoryConfig, RemotePager
    from ..telemetry import NULL_TELEMETRY, telemetry_of
    from .recovery import RetryPolicy

    policy = RetryPolicy(max_attempts=7, backoff_base_s=0.05,
                         backoff_multiplier=2.0, backoff_max_s=1.0)
    collector_active = telemetry_of(None) is not NULL_TELEMETRY
    report = CertifyReport(budget=budget, seed=seed, standbys=standbys,
                           window_s=window_s)
    for i in range(budget):
        rng = np.random.default_rng((seed, i))
        plan = random_plan(rng, window_s=window_s, events=events_per_schedule,
                           kinds=tuple(kinds) if kinds else FaultKind.ALL,
                           name=f"certify-{i}")
        durable = DurableMemoryConfig(
            size_bytes=24 * MiB, chunk_bytes=8 * MiB, replication=2,
            repair_interval_s=0.5, hosts=("n0001", "n0002", "n0003"),
        )
        platform = Platform.build(
            ClusterSpec(nodes=4, jitter=0.0), seed=seed + i,
            telemetry=(None if collector_active else True),
            faults=plan, durable_memory=durable, gpu=True,
            ha=HAConfig(standbys=standbys,
                        heartbeat_interval_s=heartbeat_interval_s,
                        suspect_after=suspect_after),
        )
        env = platform.env
        for n in range(1, 4):
            platform.register_node(f"n{n:04d}", cores=4, memory_bytes=8 * GiB)
        image = Image("certify-noop", size_bytes=50 * MiB)
        platform.functions.register(
            "noop", image, runtime_s=0.02,
            demand=ResourceDemand(cores=1, membw=0.0, frac_membw=0.0),
            output_bytes=1,
        )
        client = platform.client("n0000", retry_policy=policy)
        outcomes: list = []
        counters = {"started": 0}
        for _ in range(3):
            platform.process(_stream(env, client, outcomes, counters, window_s))
        memory_client = platform.memory_client("n0000", user="certify-pager")
        pager = RemotePager(env, memory_client, page_bytes=2 * MiB,
                            resident_pages=4)
        platform.process(_paging_stream(env, pager, window_s))
        platform.run_until(window_s + 30.0)
        platform.ha.stop()
        platform.durable_memory.stop()
        platform.gpu.stop()
        client.close()
        platform.run()

        census: dict[str, int] = {}
        for detailed in outcomes:
            census[detailed.outcome.value] = census.get(detailed.outcome.value, 0) + 1
        completed = sum(1 for d in outcomes if d.ok)
        invariants = run_invariants(platform.ha, counters["started"], census)
        report.rows.append({
            "schedule": plan.name,
            "events": len(plan),
            "injected": len(platform.injector.injected),
            "skipped": len(platform.injector.skipped),
            "invocations": len(outcomes),
            "completed": completed,
            "completion_ratio": (completed / len(outcomes)) if outcomes else 0.0,
            "epochs": platform.ha.epoch,
            "outcomes": dict(sorted(census.items())),
            "invariants": invariants,
        })
    return report
