"""Time-series recording for simulation experiments.

The utilization figures of the paper (Fig. 1) are built from *sampled*
state (SLURM queried on a two-minute interval) while other results need
exact event logs.  This module provides both:

* :class:`TimeSeries` — append-only (time, value) pairs with step-function
  semantics, resampling, and time-weighted statistics;
* :class:`EventLog` — typed event records for post-hoc analysis.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

import numpy as np

__all__ = ["TimeSeries", "EventLog", "EventRecord"]


class TimeSeries:
    """A piecewise-constant signal recorded as (time, value) samples."""

    def __init__(self, name: str = ""):
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def record(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(f"non-monotonic record: {time} < {self._times[-1]}")
        if self._times and time == self._times[-1]:
            self._values[-1] = value  # same-instant overwrite keeps last value
            return
        self._times.append(float(time))
        self._values.append(float(value))

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values)

    def value_at(self, time: float) -> float:
        """Step-function lookup (last value at or before ``time``)."""
        if not self._times:
            raise ValueError("empty series")
        idx = bisect.bisect_right(self._times, time) - 1
        if idx < 0:
            raise ValueError(f"time {time} precedes first sample {self._times[0]}")
        return self._values[idx]

    def sample(self, start: float, stop: float, interval: float) -> "TimeSeries":
        """Resample on a regular grid — models SLURM polling (Fig. 1)."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        out = TimeSeries(name=f"{self.name}@{interval}")
        # Grid points are computed as start + i*interval rather than by a
        # `t += interval` loop: accumulated float error over long windows
        # (e.g. days of 2-minute polls) would otherwise push the last grid
        # point past `stop` and silently drop the final sample.
        n_points = int((stop - start) / interval * (1 + 1e-12) + 1e-9) + 1
        for i in range(max(n_points, 0)):
            t = start + i * interval
            out.record(t, self.value_at(t))
        return out

    def time_weighted_mean(self, start: Optional[float] = None, stop: Optional[float] = None) -> float:
        """Mean of the step function over [start, stop]."""
        if not self._times:
            raise ValueError("empty series")
        t0 = self._times[0] if start is None else start
        t1 = self._times[-1] if stop is None else stop
        if t1 <= t0:
            return self.value_at(t0)
        grid_t = [t0] + [t for t in self._times if t0 < t < t1] + [t1]
        total = 0.0
        for a, b in zip(grid_t[:-1], grid_t[1:]):
            total += self.value_at(a) * (b - a)
        return total / (t1 - t0)

    def intervals_where(self, predicate) -> list[tuple[float, float]]:
        """Maximal [start, end) intervals on which ``predicate(value)`` holds.

        The final interval is closed at the last recorded time.  Used to
        extract idle-node periods (Fig. 1c).
        """
        spans: list[tuple[float, float]] = []
        open_start: Optional[float] = None
        for t, v in zip(self._times, self._values):
            if predicate(v):
                if open_start is None:
                    open_start = t
            else:
                if open_start is not None:
                    spans.append((open_start, t))
                    open_start = None
        if open_start is not None and self._times:
            spans.append((open_start, self._times[-1]))
        return spans


@dataclass(frozen=True)
class EventRecord:
    time: float
    kind: str
    payload: dict = field(default_factory=dict)


class EventLog:
    """Append-only structured event log."""

    def __init__(self):
        self._records: list[EventRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def emit(self, time: float, kind: str, **payload: Any) -> None:
        self._records.append(EventRecord(time, kind, payload))

    def of_kind(self, kind: str) -> list[EventRecord]:
        return [r for r in self._records if r.kind == kind]

    def kinds(self) -> set[str]:
        return {r.kind for r in self._records}

    def between(self, start: float, stop: float) -> list[EventRecord]:
        return [r for r in self._records if start <= r.time <= stop]
