"""Seeded random-number streams.

Every stochastic component of the simulation draws from its own named
stream so that adding a new component never perturbs the draws of an
existing one (a standard reproducibility technique in discrete-event
simulation).  Streams are derived from a root seed with
``numpy.random.SeedSequence.spawn``-style child keys.
"""

from __future__ import annotations

import zlib
from typing import Optional

import numpy as np

__all__ = ["RngRegistry", "stream"]


class RngRegistry:
    """A factory of independent, named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            child = zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(np.random.SeedSequence([self.seed, child]))
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Drop all streams; subsequent draws replay from the start."""
        self._streams.clear()


_default = RngRegistry(seed=0)


def stream(name: str, seed: Optional[int] = None) -> np.random.Generator:
    """Module-level convenience: named stream from the default registry.

    Passing ``seed`` re-roots the default registry (used by test setup and
    benchmark harnesses to get independent repetitions).
    """
    global _default
    if seed is not None and seed != _default.seed:
        _default = RngRegistry(seed=seed)
    return _default.stream(name)
