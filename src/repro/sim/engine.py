"""Deterministic discrete-event simulation engine.

This is the substrate every simulated subsystem (cluster, scheduler,
network, FaaS platform) runs on.  The design follows the classic
process-interaction style popularized by SimPy: simulation *processes* are
Python generators that ``yield`` :class:`Event` objects and are resumed
when those events fire.  The engine is fully deterministic: events
scheduled for the same timestamp fire in FIFO order of scheduling, so a
seeded simulation replays bit-identically.

The engine is self-contained (no third-party dependencies) because the
reproduction environment is offline.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence at a point in simulated time.

    Events move through three states: *pending* (created), *triggered*
    (scheduled with a value, waiting in the event queue), and *processed*
    (callbacks executed).  Processes wait on events by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event to fire successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.env._schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Schedule the event to fire with an exception."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self._triggered = True
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._triggered = True
        env._schedule(self, delay)


class Initialize(Event):
    """Internal: first resumption of a new process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._triggered = True
        env._schedule(self)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A simulation process wrapping a generator of events.

    The process itself is an event that fires (with the generator's return
    value) when the generator finishes, so processes can wait on each
    other simply by yielding them.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: ProcessGenerator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event._triggered = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, priority=0)
        # Detach from the event the process was waiting on.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    # -- engine internals ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self._ok = True
                self._value = stop.value
                self._triggered = True
                env._schedule(self)
                return
            except BaseException as exc:
                env._active_process = None
                self._ok = False
                self._value = exc
                self._triggered = True
                env._schedule(self)
                return

            if not isinstance(next_event, Event):
                env._active_process = None
                exc = SimulationError(f"process {self.name!r} yielded non-event {next_event!r}")
                self._ok = False
                self._value = exc
                self._triggered = True
                env._schedule(self)
                return

            if next_event.callbacks is not None:
                # Event still pending/triggered-but-unprocessed: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                env._active_process = None
                return
            # Event already processed: loop immediately with its value.
            event = next_event


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("events belong to different environments")
        self._pending = len(self._events)
        for ev in self._events:
            if ev.callbacks is None:  # already processed
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if not self._triggered and self._pending == 0:
            self._finish()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._pending -= 1
        if self._satisfied(event):
            self._finish()

    def _results(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self._events if ev._triggered}

    def _finish(self) -> None:
        self.succeed(self._results())

    def _satisfied(self, event: Event) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every component event has fired."""

    __slots__ = ()

    def _satisfied(self, event: Event) -> bool:
        return self._pending == 0


class AnyOf(_Condition):
    """Fires when the first component event fires."""

    __slots__ = ()

    def _satisfied(self, event: Event) -> bool:
        return True


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._id_streams: dict[str, int] = {}

    def next_id(self, stream: str) -> int:
        """Sequential ids (1, 2, ...) from a named per-environment stream.

        The entity-id analogue of the named rng fan-out
        (:class:`repro.sim.rng.RngRegistry`): each environment counts its
        own streams, so ids are deterministic across test orderings and
        fresh-interpreter comparisons — unlike a module-global
        ``itertools.count``, which accumulates across every environment
        built in the process.
        """
        value = self._id_streams.get(stream, 0) + 1
        self._id_streams[stream] = value
        return value

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories -----------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        self._now, _, _, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        event._processed = True
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float] = None) -> Any:
        """Run until the queue drains or ``until`` (a time or an event)."""
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(f"until={stop_time} lies in the past (now={self._now})")

        while self._queue:
            if stop_event is not None and stop_event.processed:
                return stop_event.value
            if self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            raise SimulationError("event queue drained before the awaited event fired")
        if stop_time != float("inf"):
            self._now = stop_time
        return None
