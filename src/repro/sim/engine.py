"""Deterministic discrete-event simulation engine.

This is the substrate every simulated subsystem (cluster, scheduler,
network, FaaS platform) runs on.  The design follows the classic
process-interaction style popularized by SimPy: simulation *processes* are
Python generators that ``yield`` :class:`Event` objects and are resumed
when those events fire.  The engine is fully deterministic: events
scheduled for the same timestamp fire in FIFO order of scheduling, so a
seeded simulation replays bit-identically.

The engine is self-contained (no third-party dependencies) because the
reproduction environment is offline.

Hot-path design (see ``docs/performance.md``): the logical event order is
a single total order by ``(time, priority, seq)``, but physically the
queue is split into a binary heap for delayed/priority events and a FIFO
deque for the dominant zero-delay case (``succeed``/``fail``/process
completion/``Timeout(0)``).  Zero-delay priority-1 events are appended in
``seq`` order at non-decreasing ``now``, so the deque is already sorted
by the global key and a two-way merge at pop time reproduces the exact
single-heap order without paying ``heappush``/``heappop`` for most
events.  Events additionally keep a ``_waiter`` slot so the dominant
single-waiter case (one process blocked on one event) resumes without
touching the callback list.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


# Shared sentinel for "no callbacks registered yet": events start with
# this immutable empty tuple instead of allocating a fresh list, and only
# upgrade to a real list when a second waiter registers (the first goes
# into the ``_waiter`` slot).  ``callbacks is None`` still means
# "processed".
_NO_CALLBACKS: tuple = ()


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence at a point in simulated time.

    Events move through three states: *pending* (created), *triggered*
    (scheduled with a value, waiting in the event queue), and *processed*
    (callbacks executed).  Processes wait on events by yielding them.

    ``callbacks is None`` means the event has been consumed by the queue
    (its callbacks are being/have been run); before that, the first
    waiter is held in ``_waiter`` and any further ones in ``callbacks``,
    fired in registration order.
    """

    __slots__ = ("env", "callbacks", "_waiter", "_value", "_ok", "_triggered",
                 "_processed", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks = _NO_CALLBACKS
        self._waiter: Optional[Callable[["Event"], None]] = None
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event to fire successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        env = self.env
        env._seq += 1
        env._immediate.append((env._now, env._seq, self))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Schedule the event to fire with an exception."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self._triggered = True
        env = self.env
        env._seq += 1
        env._immediate.append((env._now, env._seq, self))
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__ + Environment._schedule: a Timeout is
        # born triggered, so the generic pending-state setup would be
        # pure overhead on the engine's most common allocation.
        self.env = env
        self.callbacks = _NO_CALLBACKS
        self._waiter = None
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        self.delay = delay
        env._seq += 1
        if delay == 0.0:
            env._immediate.append((env._now, env._seq, self))
        else:
            heapq.heappush(env._queue, (env._now + delay, env._seq, self))


class Initialize(Event):
    """Internal: first resumption of a new process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = _NO_CALLBACKS
        self._waiter = process._resume
        self._value = None
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        env._seq += 1
        env._immediate.append((env._now, env._seq, self))


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A simulation process wrapping a generator of events.

    The process itself is an event that fires (with the generator's return
    value) when the generator finishes, so processes can wait on each
    other simply by yielding them.
    """

    __slots__ = ("_generator", "_send", "_throw", "_target", "_resume", "name")

    def __init__(self, env: "Environment", generator: ProcessGenerator, name: str = ""):
        try:
            self._send = generator.send
            self._throw = generator.throw
        except AttributeError:
            raise TypeError(f"{generator!r} is not a generator") from None
        self.env = env
        self.callbacks = _NO_CALLBACKS
        self._waiter = None
        self._value = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self._defused = False
        self._generator = generator
        self._target: Optional[Event] = None
        # One bound method for the process's lifetime: waits register this
        # exact object, so detach can compare with ``is`` and every wait
        # skips a bound-method allocation.
        self._resume = self._resume_event
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event._triggered = True
        event._waiter = self._resume
        self.env._schedule(event, priority=0)
        # Detach from the event the process was waiting on.
        target = self._target
        if target is not None:
            if target._waiter is self._resume:
                target._waiter = None
            elif target.callbacks:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None

    # -- engine internals ---------------------------------------------------
    def _resume_event(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._send(event._value)
                else:
                    event._defused = True
                    next_event = self._throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self._ok = True
                self._value = stop.value
                self._triggered = True
                env._seq += 1
                env._immediate.append((env._now, env._seq, self))
                return
            except BaseException as exc:
                env._active_process = None
                self._ok = False
                self._value = exc
                self._triggered = True
                env._seq += 1
                env._immediate.append((env._now, env._seq, self))
                return

            if not isinstance(next_event, Event):
                env._active_process = None
                exc = SimulationError(f"process {self.name!r} yielded non-event {next_event!r}")
                self._ok = False
                self._value = exc
                self._triggered = True
                env._seq += 1
                env._immediate.append((env._now, env._seq, self))
                return

            callbacks = next_event.callbacks
            if callbacks is not None:
                # Event still pending/triggered-but-unprocessed: wait for
                # it.  The single-waiter slot keeps the dominant one
                # process / one event case off the callback list, which
                # is only allocated for the second waiter onward.
                if next_event._waiter is None and not callbacks:
                    next_event._waiter = self._resume
                elif callbacks:
                    callbacks.append(self._resume)
                else:
                    next_event.callbacks = [self._resume]
                self._target = next_event
                env._active_process = None
                return
            # Event already processed: loop immediately with its value.
            event = next_event


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("events belong to different environments")
        self._pending = len(self._events)
        for ev in self._events:
            if ev.callbacks is None:  # already processed
                self._check(ev)
            elif ev._waiter is None and not ev.callbacks:
                ev._waiter = self._check
            elif ev.callbacks:
                ev.callbacks.append(self._check)
            else:
                ev.callbacks = [self._check]
        if not self._triggered and self._pending == 0:
            self._finish()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._pending -= 1
        if self._satisfied(event):
            self._finish()

    def _results(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self._events if ev._triggered}

    def _finish(self) -> None:
        self.succeed(self._results())

    def _satisfied(self, event: Event) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every component event has fired."""

    __slots__ = ()

    def _satisfied(self, event: Event) -> bool:
        return self._pending == 0


class AnyOf(_Condition):
    """Fires when the first component event fires."""

    __slots__ = ()

    def _satisfied(self, event: Event) -> bool:
        return True


class Environment:
    """The simulation clock and event queue.

    Two physical queues back one logical order (see the module
    docstring): ``_queue`` is a heap of ``(time, priority, seq, event)``
    and ``_immediate`` a deque of ``(time, seq, event)`` zero-delay
    priority-1 entries, already sorted by the same key.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._immediate: deque[tuple[float, int, Event]] = deque()
        self._urgent: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._id_streams: dict[str, int] = {}

    def next_id(self, stream: str) -> int:
        """Sequential ids (1, 2, ...) from a named per-environment stream.

        The entity-id analogue of the named rng fan-out
        (:class:`repro.sim.rng.RngRegistry`): each environment counts its
        own streams, so ids are deterministic across test orderings and
        fresh-interpreter comparisons — unlike a module-global
        ``itertools.count``, which accumulates across every environment
        built in the process.
        """
        value = self._id_streams.get(stream, 0) + 1
        self._id_streams[stream] = value
        return value

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    @property
    def event_count(self) -> int:
        """Events scheduled so far (equals events processed once idle)."""
        return self._seq

    # -- factories -----------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        self._seq += 1
        if priority == 1:
            # The two hot queues carry no priority element: within
            # priority 1 the (time, seq) pair alone fixes the order.
            if delay == 0.0:
                self._immediate.append((self._now, self._seq, event))
            else:
                heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        else:
            # Rare lane (only interrupts use it): keeps the full
            # (time, priority, seq) key.
            heapq.heappush(self._urgent, (self._now + delay, priority, self._seq, event))

    def _pop_next(self) -> Event:
        """Pop the globally next event, advancing the clock to it.

        Three-way merge by the logical (time, priority, seq) key; the
        urgent lane is almost always empty.
        """
        queue = self._queue
        immediate = self._immediate
        # Best priority-1 candidate.
        t1 = s1 = None
        from_queue = False
        if immediate:
            t1, s1, _ = immediate[0]
            if queue:
                head = queue[0]
                if head[0] < t1 or (head[0] == t1 and head[1] < s1):
                    t1, s1 = head[0], head[1]
                    from_queue = True
        elif queue:
            head = queue[0]
            t1, s1 = head[0], head[1]
            from_queue = True
        urgent = self._urgent
        if urgent:
            t_u, p_u, s_u, _ = urgent[0]
            if t1 is None or (t_u, p_u, s_u) < (t1, 1, s1):
                self._now, _, _, event = heapq.heappop(urgent)
                return event
        if t1 is None:
            raise SimulationError("no scheduled events")
        if from_queue:
            self._now, _, event = heapq.heappop(queue)
        else:
            _, _, event = immediate.popleft()
            self._now = t1
        return event

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        t = self._queue[0][0] if self._queue else float("inf")
        if self._immediate:
            t_i = self._immediate[0][0]
            if t_i < t:
                t = t_i
        if self._urgent:
            t_u = self._urgent[0][0]
            if t_u < t:
                t = t_u
        return t

    def step(self) -> None:
        """Process the single next event."""
        event = self._pop_next()
        waiter = event._waiter
        callbacks = event.callbacks
        event.callbacks = None
        if waiter is not None:
            event._waiter = None
            waiter(event)
        for callback in callbacks:
            callback(event)
        event._processed = True
        if not event._ok and not event._defused:
            raise event._value

    def run_until_idle(self) -> None:
        """Drain the event queue with no stop-condition checks.

        The tight-loop core of :meth:`run`: everything loop-invariant
        (queue bindings, ``heappop``) is hoisted, and the per-event body
        inlines :meth:`step` without the empty-queue re-check.
        """
        queue = self._queue
        immediate = self._immediate
        urgent = self._urgent
        heappop = heapq.heappop
        while True:
            if urgent:
                if not (queue or immediate):
                    self._now, _, _, event = heappop(urgent)
                else:
                    event = self._pop_next()
            elif immediate:
                t_i, s_i, event = immediate[0]
                if queue:
                    head = queue[0]
                    t_h = head[0]
                    if t_h < t_i or (t_h == t_i and head[1] < s_i):
                        self._now, _, event = heappop(queue)
                    else:
                        immediate.popleft()
                        self._now = t_i
                else:
                    immediate.popleft()
                    self._now = t_i
            elif queue:
                self._now, _, event = heappop(queue)
            else:
                break
            waiter = event._waiter
            callbacks = event.callbacks
            event.callbacks = None
            if waiter is not None:
                event._waiter = None
                waiter(event)
            for callback in callbacks:
                callback(event)
            event._processed = True
            if not event._ok and not event._defused:
                raise event._value

    def run(self, until: Optional[float] = None) -> Any:
        """Run until the queue drains or ``until`` (a time or an event)."""
        if until is None:
            self.run_until_idle()
            return None
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(f"until={stop_time} lies in the past (now={self._now})")

        while self._queue or self._immediate or self._urgent:
            if stop_event is not None and stop_event.processed:
                return stop_event.value
            if self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            raise SimulationError("event queue drained before the awaited event fired")
        if stop_time != float("inf"):
            self._now = stop_time
        return None
