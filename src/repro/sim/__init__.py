"""Deterministic discrete-event simulation substrate."""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Container, FilterStore, Request, Resource, Store
from .rng import RngRegistry, stream
from .trace import EventLog, EventRecord, TimeSeries

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Container",
    "FilterStore",
    "Request",
    "Resource",
    "Store",
    "RngRegistry",
    "stream",
    "EventLog",
    "EventRecord",
    "TimeSeries",
]
