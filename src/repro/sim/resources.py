"""Shared-resource primitives for the simulation engine.

Three classic primitives cover every need of the cluster / FaaS models:

* :class:`Resource` — a counted set of identical slots (e.g. CPU cores on a
  node viewed as interchangeable), acquired with ``request()`` and freed
  with ``release()``.  Supports priorities so that batch jobs can outrank
  serverless functions on reclamation.
* :class:`Container` — a continuous quantity (bytes of memory, link
  bandwidth tokens) with ``get``/``put``.
* :class:`Store` — a FIFO queue of Python objects (message queues,
  invocation inboxes).

All wait queues are strictly deterministic: ties break by request order.
"""

from __future__ import annotations

import heapq
from typing import Any, Generic, Optional, TypeVar

from .engine import Environment, Event, SimulationError

__all__ = ["Resource", "Request", "Container", "Store", "FilterStore"]

T = TypeVar("T")


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Usable as a context manager inside a simulation process::

        with resource.request() as req:
            yield req
            ...  # holding the slot
    """

    __slots__ = ("resource", "count", "priority", "key")

    def __init__(self, resource: "Resource", count: int, priority: int, key: int):
        super().__init__(resource.env)
        self.resource = resource
        self.count = count
        self.priority = priority
        self.key = key

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        self.resource._cancel(self)


class Resource:
    """``capacity`` identical slots with a priority wait queue."""

    def __init__(self, env: Environment, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = int(capacity)
        self._in_use = 0
        self._seq = 0
        self._waiting: list[tuple[int, int, Request]] = []
        self._granted: set[int] = set()

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, count: int = 1, priority: int = 0) -> Request:
        """Claim ``count`` slots; lower ``priority`` value wins ties."""
        if count < 1 or count > self.capacity:
            raise ValueError(f"invalid slot count {count} (capacity {self.capacity})")
        self._seq += 1
        req = Request(self, count, priority, self._seq)
        if not self._waiting and count <= self.capacity - self._in_use:
            # Uncontended fast path: the queue is empty and the request
            # fits, so it would be granted first by _dispatch anyway —
            # grant directly without the append/sort round-trip.
            self._in_use += count
            self._granted.add(req.key)
            req.succeed(req)
            return req
        self._waiting.append((priority, self._seq, req))
        self._waiting.sort(key=lambda item: (item[0], item[1]))
        self._dispatch()
        return req

    def release(self, request: Request) -> None:
        if request.key in self._granted:
            self._granted.discard(request.key)
            self._in_use -= request.count
            self._dispatch()
        else:
            self._cancel(request)

    def _cancel(self, request: Request) -> None:
        for i, (_, _, req) in enumerate(self._waiting):
            if req is request:
                del self._waiting[i]
                return

    def _dispatch(self) -> None:
        # Grant strictly in queue order; a large request at the head blocks
        # smaller ones behind it (no starvation of wide requests).
        while self._waiting:
            priority, key, req = self._waiting[0]
            if req.count > self.capacity - self._in_use:
                break
            self._waiting.pop(0)
            self._in_use += req.count
            self._granted.add(req.key)
            req.succeed(req)


class _ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, env: Environment, amount: float):
        super().__init__(env)
        self.amount = amount


class _ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, env: Environment, amount: float):
        super().__init__(env)
        self.amount = amount


class Container:
    """A continuous quantity between 0 and ``capacity``."""

    def __init__(self, env: Environment, capacity: float, init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init outside [0, capacity]")
        self.env = env
        self.capacity = float(capacity)
        self._level = float(init)
        self._getters: list[_ContainerGet] = []
        self._putters: list[_ContainerPut] = []

    @property
    def level(self) -> float:
        return self._level

    def get(self, amount: float) -> _ContainerGet:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount > self.capacity:
            raise ValueError(f"get({amount}) exceeds capacity {self.capacity}")
        ev = _ContainerGet(self.env, amount)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def put(self, amount: float) -> _ContainerPut:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount > self.capacity:
            raise ValueError(f"put({amount}) exceeds capacity {self.capacity}")
        ev = _ContainerPut(self.env, amount)
        self._putters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                put = self._putters[0]
                if self._level + put.amount <= self.capacity:
                    self._putters.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progress = True
            if self._getters:
                get = self._getters[0]
                if get.amount <= self._level:
                    self._getters.pop(0)
                    self._level -= get.amount
                    get.succeed(get.amount)
                    progress = True


class _StoreGet(Event):
    __slots__ = ()


class _FilterGet(Event):
    __slots__ = ("predicate",)

    def __init__(self, env: Environment, predicate):
        super().__init__(env)
        self.predicate = predicate


class FilterStore(Generic[T]):
    """A store whose getters take the first item matching a predicate.

    Used for MPI-style mailboxes: a receive posted for ``(source, tag)``
    must not consume messages intended for another receive.
    """

    def __init__(self, env: Environment):
        self.env = env
        self.items: list[T] = []
        self._getters: list[_FilterGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: T) -> Event:
        ev = Event(self.env)
        self.items.append(item)
        ev.succeed(item)
        self._dispatch()
        return ev

    def get(self, predicate=lambda item: True) -> _FilterGet:
        ev = _FilterGet(self.env, predicate)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            for getter in list(self._getters):
                for i, item in enumerate(self.items):
                    if getter.predicate(item):
                        self._getters.remove(getter)
                        del self.items[i]
                        getter.succeed(item)
                        progress = True
                        break
                if progress:
                    break


class Store(Generic[T]):
    """Unbounded-or-bounded FIFO queue of objects."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        self.env = env
        self.capacity = capacity
        self.items: list[T] = []
        self._getters: list[_StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: T) -> Event:
        ev = Event(self.env)
        if len(self.items) >= self.capacity:
            ev.fail(SimulationError("store full"))
            return ev
        self.items.append(item)
        ev.succeed(item)
        self._dispatch()
        return ev

    def get(self) -> _StoreGet:
        ev = _StoreGet(self.env)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        while self._getters and self.items:
            getter = self._getters.pop(0)
            getter.succeed(self.items.pop(0))
