"""Unified telemetry: sim-time tracing spans, metrics, and exporters.

The observability layer for the whole reproduction.  Subsystems obtain
their handle with ``telemetry_of(env)`` (a no-op implementation when
telemetry is disabled — the default), the CLI activates a
:class:`TelemetryCollector` around experiment runs, and exporters turn
the result into JSONL spans, Chrome ``trace_event`` JSON (Perfetto),
or Prometheus text.  See ``docs/observability.md`` for the span
taxonomy and metric naming convention.
"""

from .exporters import (
    chrome_trace_events,
    load_spans,
    prometheus_text,
    write_chrome_trace,
    write_prometheus_text,
    write_spans_jsonl,
)
from .metrics import (
    METRIC_NAME_RE,
    METRIC_UNITS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
    validate_metric_name,
)
from .provider import (
    NULL_TELEMETRY,
    Telemetry,
    TelemetryCollector,
    install,
    telemetry_of,
)
from .causal import (
    critical_path,
    critical_path_table,
    trace_index,
    trace_root,
    trace_summaries,
)
from .context import TraceContext, reset_trace_ids
from .span import Span, SpanKind, reset_span_ids
from .streaming import (
    FlightRecorder,
    JsonlStreamWriter,
    P2Quantile,
    RedAggregator,
    SloConfig,
    SloMonitor,
    SpanPipeline,
    StreamConfig,
    StreamStats,
)
from .summary import span_kind_stats, span_summary_table, utilization_summary
from .tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Span",
    "SpanKind",
    "reset_span_ids",
    "TraceContext",
    "reset_trace_ids",
    "P2Quantile",
    "StreamStats",
    "JsonlStreamWriter",
    "FlightRecorder",
    "RedAggregator",
    "SloConfig",
    "SloMonitor",
    "StreamConfig",
    "SpanPipeline",
    "trace_index",
    "trace_root",
    "trace_summaries",
    "critical_path",
    "critical_path_table",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "METRIC_NAME_RE",
    "METRIC_UNITS",
    "validate_metric_name",
    "Telemetry",
    "TelemetryCollector",
    "NULL_TELEMETRY",
    "telemetry_of",
    "install",
    "write_spans_jsonl",
    "load_spans",
    "chrome_trace_events",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus_text",
    "span_kind_stats",
    "span_summary_table",
    "utilization_summary",
]
