"""Wiring telemetry to environments with zero overhead by default.

Subsystems never construct tracers; they ask ``telemetry_of(env)`` once
at init.  Resolution order:

1. a :class:`Telemetry` explicitly installed on that environment
   (``Telemetry.install(env)`` / ``install(env, tel)``);
2. the innermost *active* :class:`TelemetryCollector` — the CLI
   activates one around an experiment run, so every environment the
   experiment constructs internally gets traced without the experiment
   knowing (each environment receives its own clock-bound scope,
   because simulated clocks restart at zero per environment while the
   span sink is shared);
3. otherwise the process-wide null telemetry: no-op tracer, no-op
   metrics, no allocation per call.

Nothing here schedules events or consumes random numbers, so enabling
telemetry cannot perturb a seeded simulation — ``tests/telemetry``
asserts traced and untraced runs produce identical event timelines.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional

from .metrics import MetricsRegistry, NULL_REGISTRY
from .span import Span
from .tracer import NULL_TRACER, Tracer

__all__ = [
    "Telemetry",
    "TelemetryCollector",
    "NULL_TELEMETRY",
    "telemetry_of",
    "install",
]


class Telemetry:
    """A tracer + metrics registry bound to one clock."""

    enabled = True

    def __init__(
        self,
        env: Any = None,
        clock: Optional[Callable[[], float]] = None,
        sink: Optional[Any] = None,
        scope: str = "",
    ):
        if clock is None:
            clock = (lambda: env.now) if env is not None else time.perf_counter
        key_fn: Callable[[], Any]
        if env is not None:
            # Per-process span stacks: generator processes interleave.
            key_fn = lambda: env.active_process
        else:
            key_fn = lambda: None
        self.clock = clock
        self.scope = scope
        self.tracer = Tracer(clock, sink=sink, key_fn=key_fn)
        self.metrics = MetricsRegistry(clock, scope=scope)

    @property
    def spans(self) -> Any:
        return self.tracer.spans

    def install(self, env: Any) -> "Telemetry":
        install(env, self)
        return self


class _NullTelemetry:
    enabled = False
    tracer = NULL_TRACER
    metrics = NULL_REGISTRY
    spans: tuple = ()
    scope = ""


NULL_TELEMETRY = _NullTelemetry()

#: Stack of active collectors (innermost last).
_ACTIVE: list["TelemetryCollector"] = []


class TelemetryCollector:
    """Aggregates telemetry from every environment built while active.

    One experiment run may construct several :class:`Environment`
    instances (fig07 builds three).  Spans from all of them land in one
    shared list; each environment gets its own metrics registry scope
    (``sim0``, ``sim1``, ... plus ``wall`` for live wall-clock code)
    because simulated clocks restart at zero and time-weighted gauges
    must stay monotone per clock.
    """

    def __init__(self, pipeline: Optional[Any] = None):
        # ``pipeline`` (any ``append``-able, usually a
        # :class:`~repro.telemetry.streaming.SpanPipeline`) replaces the
        # accumulate-everything list: spans are processed as they close
        # and only the pipeline's bounded tail stays iterable here.
        self.spans: Any = pipeline if pipeline is not None else []
        self.pipeline = pipeline
        self.scopes: List[Telemetry] = []
        self._wall: Optional[Telemetry] = None

    # -- scope management -------------------------------------------------------
    def scope_for(self, env: Any) -> Telemetry:
        telemetry = Telemetry(env=env, sink=self.spans, scope=f"sim{len(self.scopes)}")
        self.scopes.append(telemetry)
        return telemetry

    def wall_scope(self) -> Telemetry:
        if self._wall is None:
            self._wall = Telemetry(env=None, sink=self.spans, scope="wall")
            self.scopes.append(self._wall)
        return self._wall

    def registries(self) -> List[MetricsRegistry]:
        return [t.metrics for t in self.scopes]

    # -- activation --------------------------------------------------------------
    def __enter__(self) -> "TelemetryCollector":
        _ACTIVE.append(self)
        return self

    def __exit__(self, *exc: Any) -> bool:
        _ACTIVE.remove(self)
        return False

    activate = __enter__  # readable alias for non-with usage


def telemetry_of(env: Any) -> Any:
    """The telemetry handle for ``env`` (or wall-clock code when None)."""
    if env is not None:
        installed = getattr(env, "_telemetry", None)
        if installed is not None:
            return installed
    if _ACTIVE:
        collector = _ACTIVE[-1]
        if env is None:
            return collector.wall_scope()
        telemetry = collector.scope_for(env)
        env._telemetry = telemetry
        return telemetry
    return NULL_TELEMETRY


def install(env: Any, telemetry: Telemetry) -> None:
    """Pin ``telemetry`` to ``env`` regardless of active collectors."""
    env._telemetry = telemetry
