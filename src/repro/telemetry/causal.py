"""Causal-tree analysis: group spans by trace and extract critical paths.

A traced request is a tree: the ``trace_id`` every span carries in its
attrs names the tree, ``parent_id`` links name the edges.  The critical
path of a trace is the chain of spans that determined its end-to-end
latency — at every node, the child that finished last (the one the
parent was still waiting on).  This turns the paper's Fig. 7 latency
decomposition into an operation on real trace data: the walk from a
``capacity.invocation`` root through the retry attempt that finally
succeeded, down to the executor's dispatch/sandbox/execution slices.

All functions are pure over a span sequence — they work equally on a
live collector's tail and on spans loaded back from a JSONL/Chrome file.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..analysis.tables import render_table
from .span import Span

__all__ = [
    "trace_index",
    "trace_summaries",
    "trace_root",
    "critical_path",
    "critical_path_table",
]


def trace_index(spans: Iterable[Span]) -> Dict[int, List[Span]]:
    """Closed spans grouped by ``trace_id``, in stream order."""
    traces: Dict[int, List[Span]] = {}
    for span in spans:
        trace_id = span.attrs.get("trace_id")
        if trace_id is None or span.end is None:
            continue
        traces.setdefault(trace_id, []).append(span)
    return traces


def trace_root(trace_spans: List[Span]) -> Optional[Span]:
    """The root of one trace: no parent, or parent outside the trace."""
    ids = {span.span_id for span in trace_spans}
    roots = [
        span for span in trace_spans
        if span.parent_id is None or span.parent_id not in ids
    ]
    if not roots:
        return None
    # The earliest-starting root wins; span_id breaks exact ties.
    return min(roots, key=lambda s: (s.start, s.span_id))


def trace_summaries(spans: Iterable[Span]) -> List[dict]:
    """One row per trace: id, root name, span count, wall-to-wall time."""
    rows = []
    for trace_id, members in sorted(trace_index(spans).items()):
        root = trace_root(members)
        start = min(s.start for s in members)
        end = max(s.end for s in members)
        rows.append({
            "trace_id": trace_id,
            "root": root.name if root is not None else "?",
            "spans": len(members),
            "start": start,
            "end": end,
            "duration_s": end - start,
        })
    return rows


def critical_path(trace_spans: List[Span]) -> List[dict]:
    """The last-finishing-child chain from the trace root to a leaf.

    Returns one row per step: depth, span name/track, start/end, the
    span's own duration, and ``self_s`` — the part of its duration not
    covered by the next step down (where the time actually went).
    Deterministic: ties on end time break by start then span id.
    """
    root = trace_root(trace_spans)
    if root is None:
        return []
    children: Dict[int, List[Span]] = {}
    for span in trace_spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    path: List[dict] = []
    node = root
    depth = 0
    visited = set()
    while node is not None and node.span_id not in visited:
        visited.add(node.span_id)
        kids = children.get(node.span_id, [])
        last = max(kids, key=lambda s: (s.end, s.start, s.span_id)) if kids else None
        covered = last.duration if last is not None else 0.0
        path.append({
            "depth": depth,
            "name": node.name,
            "track": node.track,
            "start": node.start,
            "end": node.end,
            "duration_s": node.duration,
            "self_s": max(node.duration - covered, 0.0),
            "attrs": dict(node.attrs),
        })
        node = last
        depth += 1
    return path


def critical_path_table(trace_spans: List[Span], trace_id: Optional[int] = None) -> str:
    """Render a trace's critical path as an aligned ASCII table."""
    steps = critical_path(trace_spans)
    if not steps:
        return "no spans with a trace_id"
    title = (f"critical path of trace {trace_id}"
             if trace_id is not None else "critical path")
    headers = ["step", "span", "track", "start", "duration_s", "self_s"]
    rows = []
    for step in steps:
        rows.append([
            "  " * step["depth"] + str(step["depth"]),
            step["name"],
            step["track"],
            f"{step['start']:.6f}",
            f"{step['duration_s']:.6f}",
            f"{step['self_s']:.6f}",
        ])
    return render_table(headers, rows, title=title)
