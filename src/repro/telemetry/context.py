"""Causal trace context: one identity for a request's whole journey.

A :class:`TraceContext` is the pair ``(trace_id, span_id)`` that a
request carries from hop to hop — admission queue, warm-pool
acquisition, executor dispatch, retry re-attempts after a crash, the
cloud-burst detour, memory-service quorum writes — so that every span
recorded anywhere on its behalf joins **one causal tree** keyed by
``trace_id``, even when the request crosses a node death and resumes on
different hardware.

Mechanics:

* the *front door* (``CapacityPlane`` admission, or a bare
  ``RFaaSClient`` when no plane governs it) **mints** a fresh context
  with :meth:`TraceContext.mint` and opens the root span;
* every span opened *under* that context links ``parent_id`` to the
  context's ``span_id`` and stamps ``trace_id`` into its attrs;
* crossing a process boundary (client → executor, plane → admission
  queue) the caller derives a :meth:`child` context from the span it
  just opened, so the callee's spans nest underneath it.

Trace ids are drawn from a plain module-level counter: no randomness is
consumed and no simulation events are scheduled, which preserves the
telemetry subsystem's determinism contract (traced and untraced runs
replay identical event timelines).  Like span ids, trace ids are
deterministic within one interpreter, so exports are byte-identical
across fresh interpreter runs of the same seed.
"""

from __future__ import annotations

import itertools
from typing import Optional

__all__ = ["TraceContext", "reset_trace_ids"]

_trace_ids = itertools.count(1)


def reset_trace_ids() -> None:
    """Restart trace-id allocation at 1 (see ``span.reset_span_ids``).

    The sweep runner calls this before each scenario's private span
    stream so trace ids — like span ids — are a pure function of the
    scenario, not of interpreter history.
    """
    global _trace_ids
    _trace_ids = itertools.count(1)


class TraceContext:
    """Immutable (trace_id, span_id) pair threaded through invocation hops."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: Optional[int] = None):
        object.__setattr__(self, "trace_id", trace_id)
        object.__setattr__(self, "span_id", span_id)

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("TraceContext is immutable")

    @classmethod
    def mint(cls, span_id: Optional[int] = None) -> "TraceContext":
        """A fresh trace identity (deterministic counter, no RNG)."""
        return cls(next(_trace_ids), span_id)

    def child(self, span_id: int) -> "TraceContext":
        """The same trace, re-anchored under ``span_id``."""
        return TraceContext(self.trace_id, span_id)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TraceContext trace={self.trace_id} span={self.span_id}>"
