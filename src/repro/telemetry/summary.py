"""Post-hoc summaries over exported telemetry.

``repro telemetry summary trace.json`` prints the per-span-kind latency
table produced here: for every span name, the count and the
mean/p50/p95/max duration — the decomposition the paper's Fig. 7
discussion walks through (dispatch pickup vs. sandbox acquisition vs.
execution).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..analysis.tables import render_table
from .span import Span

__all__ = ["span_kind_stats", "span_summary_table", "utilization_summary"]


def span_kind_stats(spans: Iterable[Span]) -> Dict[str, dict]:
    """Per span-name duration statistics (instants contribute count only)."""
    groups: Dict[str, List[Span]] = {}
    for span in spans:
        if span.end is None:
            continue
        groups.setdefault(span.name, []).append(span)
    stats: Dict[str, dict] = {}
    for name, members in sorted(groups.items()):
        durations = [s.duration for s in members if not s.is_instant]
        entry: dict = {"count": len(members), "instants": len(members) - len(durations)}
        if durations:
            arr = np.asarray(durations)
            entry.update(
                mean_s=float(arr.mean()),
                p50_s=float(np.median(arr)),
                p95_s=float(np.percentile(arr, 95)),
                max_s=float(arr.max()),
            )
        stats[name] = entry
    return stats


def span_summary_table(spans: Sequence[Span]) -> str:
    """The ``repro telemetry summary`` latency table."""
    stats = span_kind_stats(spans)
    if not stats:
        return "no spans recorded"
    rows = []
    for name, entry in stats.items():
        if "mean_s" in entry:
            rows.append([
                name, entry["count"],
                entry["mean_s"] * 1e6, entry["p50_s"] * 1e6,
                entry["p95_s"] * 1e6, entry["max_s"] * 1e6,
            ])
        else:
            rows.append([name, entry["count"], "-", "-", "-", "-"])
    return render_table(
        ["span", "count", "mean (us)", "p50 (us)", "p95 (us)", "max (us)"],
        rows,
        title=f"Telemetry summary — {sum(e['count'] for e in stats.values())} spans",
    )


def utilization_summary(scenarios: Iterable) -> str:
    """Render ScenarioUtilization objects via their ``__str__`` lines.

    Accepts an iterable or the dict ``disagg.colocation_scenarios``
    returns; used by the metrics summary alongside the span table.
    """
    if isinstance(scenarios, dict):
        scenarios = scenarios.values()
    lines = [str(s) for s in scenarios]
    if not lines:
        return "no scenarios"
    return "\n".join(lines)
