"""Metrics registry: counters, gauges, and histograms on one clock.

Naming is enforced at registration: every metric is
``repro_<subsystem>_<name>_<unit>`` with the unit drawn from a closed
set, so exports from different subsystems aggregate without collisions
and the ``tools/check_metric_names.py`` lint can hold the line.

* :class:`Counter` — monotone event count;
* :class:`Gauge` — instantaneous level, backed by a
  :class:`~repro.sim.trace.TimeSeries` so time-weighted means (the only
  honest average of a step signal, cf. Fig. 1's sampled utilization) come
  for free;
* :class:`Histogram` — fixed log-spaced buckets for cheap export plus
  the exact sample set for true quantiles (the paper reports p50/p95
  and medians of microsecond-scale latencies, which coarse buckets
  would butcher).

Metrics of the same name but different ``labels`` (e.g. one warm pool
per node) are distinct instruments under one family name.
"""

from __future__ import annotations

import bisect
import math
import re
from functools import lru_cache
from typing import Callable, Dict, Iterable, Optional, Tuple

from ..sim.trace import TimeSeries

__all__ = [
    "METRIC_NAME_RE",
    "METRIC_UNITS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "validate_metric_name",
]

#: Allowed terminal unit segments of a metric name.
METRIC_UNITS = ("seconds", "bytes", "total", "count", "ratio")

#: repro_<subsystem>_<name>_<unit>; subsystem and name are snake_case.
METRIC_NAME_RE = re.compile(
    r"^repro_[a-z][a-z0-9]*(?:_[a-z0-9]+)+_(?:%s)$" % "|".join(METRIC_UNITS)
)


@lru_cache(maxsize=1024)
def validate_metric_name(name: str) -> str:
    # Cached: the closed metric vocabulary is tiny, but registration runs
    # per-instrument per-executor, i.e. thousands of times in a sweep.
    if not METRIC_NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} violates the repro_<subsystem>_<name>_<unit> "
            f"convention (unit in {METRIC_UNITS})"
        )
    return name


LabelPairs = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[dict]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Base: identity (name + labels + help) shared by all instruments."""

    kind = "untyped"

    def __init__(self, name: str, labels: LabelPairs = (), help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help

    def label_str(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return "{%s}" % inner


class Counter(Metric):
    kind = "counter"

    def __init__(self, name: str, labels: LabelPairs = (), help: str = ""):
        super().__init__(name, labels, help)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge(Metric):
    kind = "gauge"

    def __init__(self, name: str, clock: Callable[[], float],
                 labels: LabelPairs = (), help: str = ""):
        super().__init__(name, labels, help)
        self._clock = clock
        self.series = TimeSeries(name=name)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.series.record(self._clock(), self.value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def time_weighted_mean(self) -> float:
        if not len(self.series):
            return 0.0
        start = self.series.times[0]
        now = self._clock()
        if now <= start:
            return self.value
        return self.series.time_weighted_mean(start, now)


def default_buckets(lo: float = 1e-7, hi: float = 1e4, per_decade: int = 1) -> list[float]:
    """Fixed log-spaced bucket upper bounds spanning [lo, hi]."""
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    decades = math.log10(hi / lo)
    n = int(round(decades * per_decade))
    return [lo * 10 ** (i / per_decade) for i in range(n + 1)]


class Histogram(Metric):
    kind = "histogram"

    def __init__(self, name: str, labels: LabelPairs = (), help: str = "",
                 buckets: Optional[Iterable[float]] = None):
        super().__init__(name, labels, help)
        bounds = sorted(buckets) if buckets is not None else default_buckets()
        if not bounds:
            raise ValueError("need at least one bucket bound")
        self.bounds = list(bounds)                 # finite upper bounds
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +1 for +Inf
        self.sum = 0.0
        self._samples: list[float] = []

    @property
    def count(self) -> int:
        return len(self._samples)

    def observe(self, value: float) -> None:
        self._samples.append(float(value))
        self.sum += value
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1

    def quantile(self, q: float) -> float:
        """Exact quantile over all observed samples (nearest-rank)."""
        if not 0 <= q <= 1:
            raise ValueError("quantile in [0, 1]")
        if not self._samples:
            raise ValueError(f"histogram {self.name} has no samples")
        ordered = sorted(self._samples)
        idx = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[idx]

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        out = []
        running = 0
        for bound, n in zip(self.bounds + [math.inf], self.bucket_counts):
            running += n
            out.append((bound, running))
        return out


class MetricsRegistry:
    """Per-environment (or per-run) instrument store.

    ``counter``/``gauge``/``histogram`` are get-or-create: subsystems
    can register the same family independently and share the instrument.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None, scope: str = ""):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.scope = scope
        self._metrics: Dict[Tuple[str, LabelPairs], Metric] = {}

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def _get_or_create(self, cls, name, labels, help, **kwargs) -> Metric:
        validate_metric_name(name)
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels=key[1], help=help, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str, labels: Optional[dict] = None, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(self, name: str, labels: Optional[dict] = None, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, labels, help, clock=self._clock)

    def histogram(self, name: str, labels: Optional[dict] = None, help: str = "",
                  buckets: Optional[Iterable[float]] = None) -> Histogram:
        return self._get_or_create(Histogram, name, labels, help, buckets=buckets)

    def get(self, name: str, labels: Optional[dict] = None) -> Optional[Metric]:
        return self._metrics.get((name, _label_key(labels)))

    def families(self) -> dict[str, list[Metric]]:
        out: dict[str, list[Metric]] = {}
        for metric in self._metrics.values():
            out.setdefault(metric.name, []).append(metric)
        return out


class _NullInstrument:
    """One object that absorbs every instrument method as a no-op."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None: ...
    def dec(self, amount: float = 1.0) -> None: ...
    def set(self, value: float) -> None: ...
    def observe(self, value: float) -> None: ...
    def time_weighted_mean(self) -> float:
        return 0.0
    def mean(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Zero-overhead default registry: still validates names so a typo'd
    metric fails fast even in untraced runs."""

    enabled = False

    def counter(self, name: str, labels: Optional[dict] = None, help: str = "") -> _NullInstrument:
        validate_metric_name(name)
        return _NULL_INSTRUMENT

    def gauge(self, name: str, labels: Optional[dict] = None, help: str = "") -> _NullInstrument:
        validate_metric_name(name)
        return _NULL_INSTRUMENT

    def histogram(self, name: str, labels: Optional[dict] = None, help: str = "",
                  buckets: Optional[Iterable[float]] = None) -> _NullInstrument:
        validate_metric_name(name)
        return _NULL_INSTRUMENT

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullMetricsRegistry()
