"""Exporters: JSONL spans, Chrome ``trace_event`` JSON, Prometheus text.

* **JSONL** — one span object per line; lossless, trivially greppable,
  and the input format of ``repro telemetry summary``;
* **Chrome trace_event** — loadable in Perfetto / ``about://tracing``;
  each span track (node/executor) becomes one named thread so the
  invocation critical path reads as nested slices;
* **Prometheus text exposition** — counters, gauges (with a
  time-weighted-mean sample), and cumulative histogram buckets.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, List, Sequence, TextIO, Union

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .span import Span

__all__ = [
    "write_spans_jsonl",
    "load_spans",
    "chrome_trace_events",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus_text",
]


# -- JSONL span dump ----------------------------------------------------------

def write_spans_jsonl(spans: Iterable[Span], path: str) -> int:
    """One JSON object per line; returns the number of spans written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
            n += 1
    return n


def _spans_from_chrome(payload: Union[dict, list]) -> List[Span]:
    events = payload["traceEvents"] if isinstance(payload, dict) else payload
    spans: List[Span] = []
    for event in events:
        if event.get("ph") not in ("X", "i"):
            continue
        args = dict(event.get("args", {}))
        track = args.pop("track", f"{event.get('pid', 0)}/{event.get('tid', 0)}")
        span_id = args.pop("span_id", None)
        start = event["ts"] / 1e6
        span = Span(event.get("name", "?"), start, track=track,
                    parent_id=args.pop("parent_id", None), attrs=args)
        span.end = start + event.get("dur", 0) / 1e6
        if span_id is not None:
            span.span_id = span_id
        spans.append(span)
    return spans


def load_spans(path: str) -> List[Span]:
    """Read spans back from a JSONL dump *or* a Chrome trace JSON.

    Format detection is explicit rather than try-and-fall-through: a
    Chrome trace is exactly one JSON document that is either a dict
    carrying ``traceEvents`` or a bare event list.  Everything else —
    including a *single-line* JSONL file, whose lone object also parses
    as a top-level dict — is read as per-line JSONL, so a one-span dump
    can never be misrouted through the Chrome parser (which would
    silently drop it for lack of ``ph`` slices).
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.strip()
    if not stripped:
        return []
    payload = None
    if stripped.startswith(("[", "{")):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None      # multi-line JSONL: not one JSON document
    if isinstance(payload, list) or (
        isinstance(payload, dict) and "traceEvents" in payload
    ):
        return _spans_from_chrome(payload)
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


# -- Chrome trace_event -------------------------------------------------------

def _track_ids(spans: Sequence[Span]) -> dict[str, tuple[int, int]]:
    """Map each track "node/detail" to stable (pid, tid) integers."""
    processes: dict[str, int] = {}
    tracks: dict[str, tuple[int, int]] = {}
    tids: dict[str, int] = {}
    for span in spans:
        if span.track in tracks:
            continue
        proc = span.track.split("/", 1)[0]
        pid = processes.setdefault(proc, len(processes) + 1)
        tid = tids.setdefault(span.track, len(tids) + 1)
        tracks[span.track] = (pid, tid)
    return tracks


def chrome_trace_events(spans: Sequence[Span]) -> List[dict]:
    """Spans -> ``trace_event`` dicts (``X`` slices, ``i`` instants)."""
    closed = [s for s in spans if s.end is not None]
    if not closed:
        return []
    t0 = min(s.start for s in closed)
    tracks = _track_ids(closed)
    events: List[dict] = []
    for track, (pid, tid) in sorted(tracks.items(), key=lambda kv: kv[1]):
        proc = track.split("/", 1)[0]
        events.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                       "args": {"name": proc}})
        events.append({"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                       "args": {"name": track}})
    for span in closed:
        pid, tid = tracks[span.track]
        args = {"track": span.track, "span_id": span.span_id, **span.attrs}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        event = {
            "name": span.name,
            "ph": "i" if span.is_instant else "X",
            "ts": (span.start - t0) * 1e6,     # trace_event wants microseconds
            "pid": pid,
            "tid": tid,
            "args": args,
        }
        if span.is_instant:
            event["s"] = "t"                    # thread-scoped instant
        else:
            event["dur"] = (span.end - span.start) * 1e6
        events.append(event)
    return events


def write_chrome_trace(spans: Sequence[Span], path: str) -> int:
    events = chrome_trace_events(spans)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return len(events)


# -- Prometheus text exposition ----------------------------------------------

def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape per the Prometheus exposition spec: ``\\``, ``"``, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels(metric, extra: dict | None = None) -> str:
    pairs = list(metric.labels)
    if extra:
        pairs.extend((k, str(v)) for k, v in extra.items())
    if not pairs:
        return ""
    return "{%s}" % ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(pairs)
    )


def prometheus_text(registries: Union[MetricsRegistry, Iterable[MetricsRegistry]]) -> str:
    """Render one or more registries in Prometheus exposition format.

    Registries keep their ``scope`` as a label so metrics from several
    simulated environments in one run stay distinguishable.
    """
    if isinstance(registries, MetricsRegistry):
        registries = [registries]
    lines: List[str] = []
    seen_headers: set[str] = set()
    for registry in registries:
        scope = {"scope": registry.scope} if getattr(registry, "scope", "") else None
        for metric in registry:
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Counter):
                lines.append(f"{metric.name}{_labels(metric, scope)} {_fmt(metric.value)}")
            elif isinstance(metric, Gauge):
                lines.append(f"{metric.name}{_labels(metric, scope)} {_fmt(metric.value)}")
                mean_labels = dict(scope or {})
                mean_labels["stat"] = "time_weighted_mean"
                lines.append(
                    f"{metric.name}{_labels(metric, mean_labels)} "
                    f"{_fmt(metric.time_weighted_mean())}"
                )
            elif isinstance(metric, Histogram):
                for bound, cumulative in metric.cumulative_buckets():
                    bucket_labels = dict(scope or {})
                    bucket_labels["le"] = _fmt(bound)
                    lines.append(
                        f"{metric.name}_bucket{_labels(metric, bucket_labels)} {cumulative}"
                    )
                lines.append(f"{metric.name}_sum{_labels(metric, scope)} {_fmt(metric.sum)}")
                lines.append(f"{metric.name}_count{_labels(metric, scope)} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus_text(
    registries: Union[MetricsRegistry, Iterable[MetricsRegistry]],
    path_or_file: Union[str, TextIO],
) -> None:
    text = prometheus_text(registries)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        path_or_file.write(text)
