"""Span records: named, attributed intervals of (simulated or wall) time.

A :class:`Span` is the unit of tracing.  Spans nest through
``parent_id`` links and are grouped onto *tracks* — one per node or
executor — which the Chrome ``trace_event`` exporter maps to
process/thread lanes so an invocation's critical path reads left to
right in Perfetto exactly like Fig. 7's latency decomposition.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

__all__ = ["Span", "SpanKind", "reset_span_ids"]

_span_ids = itertools.count(1)


def reset_span_ids() -> None:
    """Restart span-id allocation at 1.

    Span ids are process-global, so streamed span bytes depend on what
    ran earlier in the interpreter.  The sweep runner resets the counter
    before each scenario's private pipeline, making every scenario's
    stream a pure function of ``(params, seed)`` — the merged stream is
    then byte-identical at any ``--jobs`` count.  Only call this when
    no collector with recorded spans is active: ids are unique per
    counter epoch, and parent links must not straddle a reset.
    """
    global _span_ids
    _span_ids = itertools.count(1)


class SpanKind:
    """Well-known span names (the taxonomy in docs/observability.md)."""

    REQUEST = "rfaas.request"            # client-side root of one request
    ATTEMPT = "rfaas.attempt"            # one try; retries are siblings
    CAPACITY = "capacity.invocation"     # governed front-door root
    SLO_BREACH = "slo.breach"            # burn-rate breach instant
    INVOCATION = "rfaas.invocation"
    DISPATCH = "rfaas.dispatch"
    SANDBOX = "rfaas.sandbox"
    IO = "rfaas.io"
    EXECUTION = "rfaas.execution"
    LEASE = "rfaas.lease"
    WARMPOOL_ACQUIRE = "warmpool.acquire"
    GPU_REQUEST = "gpu.request"          # root of one GPU invocation
    GPU_BATCH = "gpu.batch"              # one coalesced kernel launch
    GPU_BATCH_ITEM = "gpu.batch.item"    # one request's ride on a batch
    JOB = "slurm.job"
    OFFLOAD_LOCAL = "offload.local"
    OFFLOAD_REMOTE = "offload.remote"


class Span:
    """One traced interval.  ``end is None`` while the span is open."""

    __slots__ = ("span_id", "parent_id", "name", "track", "start", "end", "attrs")

    def __init__(
        self,
        name: str,
        start: float,
        track: str = "main",
        parent_id: Optional[int] = None,
        attrs: Optional[dict] = None,
    ):
        self.span_id = next(_span_ids)
        self.parent_id = parent_id
        self.name = name
        self.track = track
        self.start = start
        self.end: Optional[float] = None
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} still open")
        return self.end - self.start

    @property
    def is_instant(self) -> bool:
        return self.end == self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes after creation (e.g. the sandbox kind)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "track": self.track,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(
            data["name"],
            data["start"],
            track=data.get("track", "main"),
            parent_id=data.get("parent_id"),
            attrs=data.get("attrs"),
        )
        span.end = data.get("end")
        # Restore the recorded identity: parent links in a loaded dump
        # refer to the *original* ids, not whatever the counter of this
        # interpreter would hand out next.
        if "span_id" in data:
            span.span_id = data["span_id"]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = f"{self.end:.6f}" if self.end is not None else "open"
        return f"<Span {self.name} [{self.start:.6f}..{end}] track={self.track}>"
