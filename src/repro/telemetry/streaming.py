"""Streaming, bounded-memory span processing.

PR 1's exporters accumulate every span in a list and dump it once at the
end of the run; the ROADMAP's scale-out item names that as the blocker
for 10M-event sweeps.  This module replaces accumulate-then-dump with an
incremental pipeline: every span is processed the moment it closes and
then *dropped* — only fixed-size state survives:

* :class:`JsonlStreamWriter` — spans go to disk as JSONL the moment they
  close, flushed every ``flush_every`` spans, so a crash loses at most
  one flush window and the heap never holds the trace;
* :class:`FlightRecorder` — a fixed-capacity ring of the most recent
  spans ("what just happened"), snapshotted when a trigger span (a
  ``fault.*`` injection by default) flows through, like an aircraft
  flight recorder preserving the seconds before an incident;
* :class:`StreamStats` / :class:`P2Quantile` — online count/sum/min/max
  plus P² quantile estimates (Jain & Chlamtac 1985): five markers per
  quantile instead of the whole sample vector, replacing the ``numpy``
  whole-array percentiles for streaming use;
* :class:`RedAggregator` — per-tenant RED (rate, errors, duration)
  rollup driven by request-root spans, exported as ``repro_red_*``
  counters plus P² latency quantiles;
* :class:`SloMonitor` — a sliding-window burn-rate monitor over a fixed
  number of time buckets; when a tenant spends its error budget faster
  than the configured burn threshold it synthesizes an ``slo.breach``
  instant span into the stream.

:class:`SpanPipeline` chains them behind a list-like ``append`` so it
drops into :class:`~repro.telemetry.tracer.Tracer` as the span sink and
into :class:`~repro.telemetry.provider.TelemetryCollector` unchanged.
Iterating the pipeline yields the ring tail, so the existing batch
exporters keep working on "what's still in memory".

Nothing here schedules simulation events or consumes randomness: the
pipeline only *observes* closed spans, preserving the determinism
contract (traced and untraced runs replay identical event timelines).
"""

from __future__ import annotations

import bisect
import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, TextIO, Tuple

from .metrics import MetricsRegistry
from .span import Span, SpanKind

__all__ = [
    "P2Quantile",
    "StreamStats",
    "JsonlStreamWriter",
    "FlightRecorder",
    "RedAggregator",
    "SloConfig",
    "SloMonitor",
    "StreamConfig",
    "SpanPipeline",
]


# -- online estimators --------------------------------------------------------

class P2Quantile:
    """P² single-quantile estimator: five markers, O(1) per observation.

    Jain & Chlamtac, "The P² algorithm for dynamic calculation of
    quantiles and histograms without storing observations" (CACM 1985).
    Until five observations arrive the exact sorted sample is kept; from
    then on only the five marker heights/positions are adjusted, so
    memory stays constant no matter how long the stream runs.
    """

    __slots__ = ("p", "count", "_q", "_pos", "_desired", "_incr")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.p = p
        self.count = 0
        self._q: List[float] = []            # marker heights
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1 + 2 * p, 1 + 4 * p, 3 + 2 * p, 5.0]
        self._incr = [0.0, p / 2, p, (1 + p) / 2, 1.0]

    def observe(self, x: float) -> None:
        self.count += 1
        q = self._q
        if len(q) < 5:
            bisect.insort(q, float(x))
            return
        n = self._pos
        if x < q[0]:
            q[0] = float(x)
            k = 0
        elif x >= q[4]:
            q[4] = float(x)
            k = 3
        else:
            k = 0
            while x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            self._desired[i] += self._incr[i]
        for i in (1, 2, 3):
            d = self._desired[i] - n[i]
            if (d >= 1 and n[i + 1] - n[i] > 1) or (d <= -1 and n[i - 1] - n[i] < -1):
                sign = 1 if d > 0 else -1
                candidate = self._parabolic(i, sign)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, sign)
                q[i] = candidate
                n[i] += sign

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._q, self._pos
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        q, n = self._q, self._pos
        return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])

    @property
    def value(self) -> float:
        """Current estimate (exact nearest-rank below five observations)."""
        if self.count == 0:
            return math.nan
        if self.count < 5:
            rank = max(0, min(len(self._q) - 1,
                              int(math.ceil(self.p * len(self._q))) - 1))
            return self._q[rank]
        return self._q[2]


class StreamStats:
    """Online count/sum/min/max/mean plus a fixed set of P² quantiles."""

    __slots__ = ("count", "total", "minimum", "maximum", "quantiles")

    def __init__(self, quantiles: Sequence[float] = (0.5, 0.95, 0.99)):
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.quantiles: Dict[float, P2Quantile] = {
            p: P2Quantile(p) for p in quantiles
        }

    def observe(self, x: float) -> None:
        self.count += 1
        self.total += x
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x
        for estimator in self.quantiles.values():
            estimator.observe(x)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def snapshot(self) -> dict:
        out = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else math.nan,
            "max": self.maximum if self.count else math.nan,
        }
        for p, estimator in self.quantiles.items():
            out[f"p{int(round(p * 100))}"] = estimator.value
        return out


# -- sinks --------------------------------------------------------------------

class JsonlStreamWriter:
    """Writes each span as one JSONL line the moment it is appended."""

    def __init__(self, path_or_file: Any, flush_every: int = 256):
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        if isinstance(path_or_file, (str,)) or hasattr(path_or_file, "__fspath__"):
            self._fh: TextIO = open(path_or_file, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = path_or_file
            self._owns = False
        self.flush_every = flush_every
        self.written = 0
        self._since_flush = 0
        self.closed = False

    def append(self, span: Span) -> None:
        if self.closed:
            return
        self._fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        self.written += 1
        self._since_flush += 1
        if self._since_flush >= self.flush_every:
            self._fh.flush()
            self._since_flush = 0

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._fh.flush()
        if self._owns:
            self._fh.close()


class FlightRecorder:
    """Fixed-capacity ring of recent spans with fault-triggered snapshots.

    The ring always holds the last ``capacity`` closed spans.  When a
    span whose name starts with one of ``trigger_prefixes`` flows
    through, the current ring contents are preserved as a snapshot —
    the telemetry around the incident survives even though the stream
    itself is unbounded.  At most ``snapshot_limit`` snapshots are kept
    (oldest dropped), so memory stays bounded by
    ``(1 + snapshot_limit) * capacity`` spans.
    """

    def __init__(self, capacity: int = 4096,
                 trigger_prefixes: Tuple[str, ...] = ("fault.",),
                 snapshot_limit: int = 4):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.trigger_prefixes = tuple(trigger_prefixes)
        self.snapshot_limit = snapshot_limit
        self.ring: deque[Span] = deque(maxlen=capacity)
        self.snapshots: deque = deque(maxlen=max(snapshot_limit, 0))
        self.triggers = 0

    def append(self, span: Span) -> None:
        self.ring.append(span)
        if self.trigger_prefixes and span.name.startswith(self.trigger_prefixes):
            self.triggers += 1
            if self.snapshot_limit > 0:
                self.snapshots.append({
                    "trigger": span.name,
                    "at": span.start,
                    "spans": list(self.ring),
                })

    def __len__(self) -> int:
        return len(self.ring)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.ring)


# -- per-tenant rollups -------------------------------------------------------

def _tenant_of(span: Span) -> str:
    return str(span.attrs.get("tenant") or span.attrs.get("client") or "unknown")


def _is_request_root(span: Span) -> bool:
    """Request-level spans that should count once per request.

    Governed invocations are counted at their ``capacity.invocation``
    root; a bare client's ``rfaas.request`` only counts when it has no
    parent (otherwise the capacity root above it already counted it).
    """
    if span.name == SpanKind.CAPACITY:
        return True
    return span.name == SpanKind.REQUEST and span.parent_id is None


def _is_error(span: Span) -> bool:
    if span.name == SpanKind.CAPACITY:
        return span.attrs.get("route") == "rejected"
    status = span.attrs.get("status")
    if status is not None and status != "ok":
        return True
    return span.attrs.get("outcome") in ("gave_up", "timed_out")


class RedAggregator:
    """Per-tenant RED rollup: request rate, error count, duration.

    Rate and errors are plain counters (``repro_red_requests_total`` /
    ``repro_red_errors_total`` per tenant); duration is an online
    :class:`StreamStats` with P² quantiles and a running-sum counter
    (``repro_red_duration_seconds``) — no per-request state is kept.
    """

    def __init__(self, metrics: MetricsRegistry,
                 quantiles: Sequence[float] = (0.5, 0.95, 0.99)):
        self._metrics = metrics
        self._quantiles = tuple(quantiles)
        self.tenants: Dict[str, StreamStats] = {}
        self.errors: Dict[str, int] = {}
        self._m_requests: Dict[str, Any] = {}
        self._m_errors: Dict[str, Any] = {}
        self._m_duration: Dict[str, Any] = {}

    def observe(self, span: Span) -> None:
        if not _is_request_root(span) or span.end is None:
            return
        tenant = _tenant_of(span)
        stats = self.tenants.get(tenant)
        if stats is None:
            stats = self.tenants[tenant] = StreamStats(self._quantiles)
            self.errors[tenant] = 0
            self._m_requests[tenant] = self._metrics.counter(
                "repro_red_requests_total", labels={"tenant": tenant},
                help="requests observed by the RED rollup, per tenant",
            )
            self._m_errors[tenant] = self._metrics.counter(
                "repro_red_errors_total", labels={"tenant": tenant},
                help="failed requests observed by the RED rollup, per tenant",
            )
            self._m_duration[tenant] = self._metrics.counter(
                "repro_red_duration_seconds", labels={"tenant": tenant},
                help="running sum of request durations, per tenant",
            )
        duration = span.duration
        stats.observe(duration)
        self._m_requests[tenant].inc()
        self._m_duration[tenant].inc(duration)
        if _is_error(span):
            self.errors[tenant] += 1
            self._m_errors[tenant].inc()

    def table(self) -> List[dict]:
        rows = []
        for tenant in sorted(self.tenants):
            stats = self.tenants[tenant]
            row = {"tenant": tenant, "errors": self.errors[tenant]}
            row.update(stats.snapshot())
            rows.append(row)
        return rows


@dataclass(frozen=True)
class SloConfig:
    """One tenant-wide SLO: latency threshold plus an error budget."""

    #: A request slower than this counts against the budget.
    latency_threshold_s: float = 1.0
    #: Fraction of requests allowed to be bad (slow or failed).
    error_budget: float = 0.01
    #: Sliding window over which the burn rate is evaluated.
    window_s: float = 60.0
    #: Fixed bucket count: memory per tenant is O(buckets), not O(requests).
    buckets: int = 12
    #: Burn rate at or above which a breach span is emitted (1.0 = the
    #: budget is being spent exactly as fast as the window allows).
    burn_threshold: float = 1.0

    def __post_init__(self):
        if self.latency_threshold_s <= 0:
            raise ValueError("latency_threshold_s must be positive")
        if not 0 < self.error_budget < 1:
            raise ValueError("error_budget must be in (0, 1)")
        if self.window_s <= 0 or self.buckets < 1:
            raise ValueError("window must be positive with >= 1 bucket")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")


class _TenantWindow:
    """Fixed-bucket sliding window of (total, bad) request counts."""

    __slots__ = ("bucket_s", "buckets", "totals", "bads", "head_index")

    def __init__(self, config: SloConfig):
        self.bucket_s = config.window_s / config.buckets
        self.buckets = config.buckets
        self.totals = [0] * config.buckets
        self.bads = [0] * config.buckets
        self.head_index: Optional[int] = None   # absolute bucket index of head

    def observe(self, t: float, bad: bool) -> None:
        index = int(t / self.bucket_s)
        if self.head_index is None:
            self.head_index = index
        elif index > self.head_index:
            # Zero every bucket the stream skipped past.
            steps = min(index - self.head_index, self.buckets)
            for _ in range(steps):
                self.head_index += 1
                slot = self.head_index % self.buckets
                self.totals[slot] = 0
                self.bads[slot] = 0
            self.head_index = index
        elif index < self.head_index - self.buckets + 1:
            return  # older than the window (multi-env clock restart); drop
        slot = index % self.buckets
        self.totals[slot] += 1
        if bad:
            self.bads[slot] += 1

    @property
    def total(self) -> int:
        return sum(self.totals)

    @property
    def bad(self) -> int:
        return sum(self.bads)


class SloMonitor:
    """Sliding-window burn-rate monitor emitting ``slo.breach`` spans.

    Burn rate is ``bad_fraction / error_budget`` over the window: 1.0
    means the tenant is spending its budget exactly as fast as allowed,
    2.0 means twice as fast.  A breach span is emitted when the rate
    crosses ``burn_threshold`` and re-arms only after it drops back
    below, so a sustained burn produces one span, not thousands.
    """

    def __init__(self, metrics: MetricsRegistry, config: Optional[SloConfig] = None):
        self.config = config or SloConfig()
        self._metrics = metrics
        self._windows: Dict[str, _TenantWindow] = {}
        self._burning: Dict[str, bool] = {}
        self._m_breaches: Dict[str, Any] = {}
        self._m_bad: Dict[str, Any] = {}
        self.breaches: List[Span] = []      # bounded: one per burn episode

    def burn_rate(self, tenant: str) -> float:
        window = self._windows.get(tenant)
        if window is None or not window.total:
            return 0.0
        return (window.bad / window.total) / self.config.error_budget

    def observe(self, span: Span) -> Optional[Span]:
        """Feed one request root; returns a breach span when one fires."""
        if not _is_request_root(span) or span.end is None:
            return None
        tenant = _tenant_of(span)
        window = self._windows.get(tenant)
        if window is None:
            window = self._windows[tenant] = _TenantWindow(self.config)
            self._burning[tenant] = False
            self._m_breaches[tenant] = self._metrics.counter(
                "repro_slo_breaches_total", labels={"tenant": tenant},
                help="burn-rate breach episodes, per tenant",
            )
            self._m_bad[tenant] = self._metrics.counter(
                "repro_slo_bad_requests_total", labels={"tenant": tenant},
                help="requests that were slow or failed, per tenant",
            )
        bad = _is_error(span) or span.duration > self.config.latency_threshold_s
        window.observe(span.end, bad)
        if bad:
            self._m_bad[tenant].inc()
        rate = self.burn_rate(tenant)
        if rate >= self.config.burn_threshold:
            if not self._burning[tenant]:
                self._burning[tenant] = True
                self._m_breaches[tenant].inc()
                breach = Span(
                    SpanKind.SLO_BREACH, span.end, track="slo",
                    attrs={
                        "tenant": tenant,
                        "burn_rate": round(rate, 4),
                        "bad": window.bad,
                        "total": window.total,
                        "window_s": self.config.window_s,
                    },
                )
                breach.end = span.end
                self.breaches.append(breach)
                return breach
        else:
            self._burning[tenant] = False
        return None


# -- the pipeline -------------------------------------------------------------

@dataclass(frozen=True)
class StreamConfig:
    """Knobs of the streaming span pipeline."""

    ring_capacity: int = 4096
    flush_every: int = 256
    snapshot_limit: int = 4
    trigger_prefixes: Tuple[str, ...] = ("fault.",)
    quantiles: Tuple[float, ...] = (0.5, 0.95, 0.99)
    slo: SloConfig = field(default_factory=SloConfig)

    def __post_init__(self):
        if self.ring_capacity < 1:
            raise ValueError("ring_capacity must be >= 1")


class SpanPipeline:
    """Incremental span sink: process-and-drop instead of accumulate.

    Duck-types the ``append`` / ``__iter__`` / ``__len__`` surface of the
    span list the batch exporters expect, so it can be handed to
    :class:`~repro.telemetry.provider.TelemetryCollector` (or a bare
    :class:`~repro.telemetry.tracer.Tracer`) as the sink.  Iteration
    yields the flight-recorder tail — "what is still in memory" — while
    the full stream lives in the optional JSONL writer's file.
    """

    def __init__(self, config: Optional[StreamConfig] = None,
                 stream_path: Any = None):
        self.config = config or StreamConfig()
        # Counters only: histograms/gauges retain per-sample state, which
        # would defeat the bounded-memory point of the pipeline.
        self.metrics = MetricsRegistry(lambda: 0.0, scope="stream")
        self.writer: Optional[JsonlStreamWriter] = (
            JsonlStreamWriter(stream_path, flush_every=self.config.flush_every)
            if stream_path is not None else None
        )
        self.recorder = FlightRecorder(
            capacity=self.config.ring_capacity,
            trigger_prefixes=self.config.trigger_prefixes,
            snapshot_limit=self.config.snapshot_limit,
        )
        self.kind_stats: Dict[str, StreamStats] = {}
        self.red = RedAggregator(self.metrics, quantiles=self.config.quantiles)
        self.slo = SloMonitor(self.metrics, self.config.slo)
        self.seen = 0
        self.peak_retained = 0

    # -- sink surface --------------------------------------------------------
    def append(self, span: Span) -> None:
        self.seen += 1
        if self.writer is not None:
            self.writer.append(span)
        self.recorder.append(span)
        stats = self.kind_stats.get(span.name)
        if stats is None:
            stats = self.kind_stats[span.name] = StreamStats(self.config.quantiles)
        if span.end is not None:
            stats.observe(span.duration)
        self.red.observe(span)
        breach = self.slo.observe(span)
        if breach is not None:
            # Synthesized spans join the stream like any other.
            if self.writer is not None:
                self.writer.append(breach)
            self.recorder.append(breach)
        retained = len(self.recorder.ring)
        if retained > self.peak_retained:
            self.peak_retained = retained

    def __iter__(self) -> Iterator[Span]:
        return iter(self.recorder)

    def __len__(self) -> int:
        return len(self.recorder)

    # -- reporting -----------------------------------------------------------
    def kind_table(self) -> List[dict]:
        rows = []
        for name in sorted(self.kind_stats):
            row = {"name": name}
            row.update(self.kind_stats[name].snapshot())
            rows.append(row)
        return rows

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()

    def __enter__(self) -> "SpanPipeline":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.close()
        return False
