"""Tracers: record spans against a clock without perturbing it.

Two implementations share one interface:

* :class:`Tracer` — records :class:`~repro.telemetry.span.Span` objects
  into a sink list, stamping them from a caller-supplied ``clock``
  (``env.now`` for simulations, ``time.perf_counter`` for the live
  offload runtime);
* :class:`NullTracer` — the zero-overhead default: every operation is a
  no-op on shared singletons, so instrumented code costs one attribute
  access and an empty context manager when telemetry is disabled.

Simulation processes interleave: two :class:`~repro.sim.engine.Process`
generators can each be inside a ``with tracer.span(...)`` block at the
same simulated instant.  A single global span stack would cross their
parent links, so the tracer keeps **one stack per key**, where the key
defaults to the environment's ``active_process`` — each process sees its
own nesting, and code running outside any process gets the ``None``
stack.  No events are scheduled and no RNG is consumed, which is what
preserves the seeded-determinism guarantee.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional

from .context import TraceContext
from .span import Span

__all__ = ["Tracer", "NullTracer", "NULL_TRACER"]


class Tracer:
    """Records spans stamped from ``clock`` into ``sink``.

    ``sink`` is anything with ``append`` — a plain list (the default) or
    a streaming :class:`~repro.telemetry.streaming.SpanPipeline` that
    processes each span incrementally instead of retaining it.

    Spans accept an optional ``ctx`` (:class:`TraceContext`): when the
    calling process has no open local span, the new span parents to
    ``ctx.span_id`` and stamps ``ctx.trace_id`` into its attrs; nested
    spans inherit ``trace_id`` from their local parent automatically, so
    one context at the top of a hop tags the whole subtree.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float],
        sink: Optional[Any] = None,
        key_fn: Optional[Callable[[], Any]] = None,
    ):
        self.clock = clock
        self.spans = sink if sink is not None else []
        self._key_fn = key_fn if key_fn is not None else (lambda: None)
        self._stacks: dict[Any, list[Span]] = {}

    @staticmethod
    def _link(parent: Optional[Span], ctx: Optional[TraceContext],
              attrs: dict) -> Optional[int]:
        """Resolve parent id + trace_id inheritance for a new span."""
        if parent is not None:
            if "trace_id" not in attrs:
                tid = parent.attrs.get("trace_id")
                if tid is None and ctx is not None:
                    tid = ctx.trace_id
                if tid is not None:
                    attrs["trace_id"] = tid
            return parent.span_id
        if ctx is not None:
            attrs.setdefault("trace_id", ctx.trace_id)
            return ctx.span_id
        return None

    # -- implicit-parent context-manager API ---------------------------------
    def current(self) -> Optional[Span]:
        """The innermost open span of the calling process, if any."""
        stack = self._stacks.get(self._key_fn())
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, track: str = "main",
             ctx: Optional[TraceContext] = None, **attrs: Any) -> Iterator[Span]:
        """Open a child of the calling process's current span (or ``ctx``)."""
        # Inlined current(): one key_fn call and one dict lookup instead
        # of two of each on this per-span hot path.
        key = self._key_fn()
        stack = self._stacks.setdefault(key, [])
        parent = stack[-1] if stack else None
        parent_id = self._link(parent, ctx, attrs)
        record = Span(
            name,
            self.clock(),
            track=track,
            parent_id=parent_id,
            attrs=attrs,
        )
        stack.append(record)
        try:
            yield record
        except BaseException as exc:
            record.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            record.end = self.clock()
            self.spans.append(record)
            # The process may have been re-keyed between enter and exit
            # (it cannot be for engine processes, but stay defensive).
            stack = self._stacks.get(key, [])
            if record in stack:
                stack.remove(record)
            if not stack:
                self._stacks.pop(key, None)

    def instant(self, name: str, track: str = "main",
                ctx: Optional[TraceContext] = None, **attrs: Any) -> Span:
        """A zero-duration marker (e.g. a lease grant or an eviction)."""
        now = self.clock()
        parent = self.current()
        parent_id = self._link(parent, ctx, attrs)
        record = Span(name, now, track=track, parent_id=parent_id, attrs=attrs)
        record.end = now
        self.spans.append(record)
        return record

    # -- explicit-lifetime API ------------------------------------------------
    def begin(self, name: str, track: str = "main",
              ctx: Optional[TraceContext] = None, **attrs: Any) -> Span:
        """Open a span whose end is not lexically scoped (e.g. a batch job).

        The span is recorded only when :meth:`finish` closes it, so an
        abandoned span never corrupts an export.  Explicit-lifetime
        spans never join the per-process stack; a ``ctx`` is the only
        way to parent them.
        """
        parent_id = self._link(None, ctx, attrs)
        return Span(name, self.clock(), track=track, parent_id=parent_id,
                    attrs=attrs)

    def finish(self, span: Span, **attrs: Any) -> Span:
        if span.end is not None:
            raise ValueError(f"span {span.name!r} already finished")
        span.end = self.clock()
        span.attrs.update(attrs)
        self.spans.append(span)
        return span


class _NullSpan(Span):
    """Shared inert span returned by the null tracer."""

    __slots__ = ()

    def __init__(self):
        super().__init__("null", 0.0)
        self.end = 0.0

    def set(self, **attrs: Any) -> "Span":
        return self


_NULL_SPAN = _NullSpan()


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """Drops everything; all methods return shared singletons."""

    enabled = False
    spans: tuple = ()

    def current(self) -> Optional[Span]:
        return None

    def span(self, name: str, track: str = "main",
             ctx: Optional[TraceContext] = None, **attrs: Any) -> _NullContext:
        return _NULL_CONTEXT

    def instant(self, name: str, track: str = "main",
                ctx: Optional[TraceContext] = None, **attrs: Any) -> Span:
        return _NULL_SPAN

    def begin(self, name: str, track: str = "main",
              ctx: Optional[TraceContext] = None, **attrs: Any) -> Span:
        return _NULL_SPAN

    def finish(self, span: Span, **attrs: Any) -> Span:
        return _NULL_SPAN


NULL_TRACER = NullTracer()
