"""The heavy-tailed tenant population behind the arrival stream.

A :class:`TenantMix` names a population of synthetic clients — a
million-plus of them — *without materializing any of them*: the
population is an integer, a tenant is an index into it, and a tenant
only ever exists as the index stamped on an arrival.  Whatever consumes
the trace (admission buckets, per-tenant RED rollups) allocates state
for the tenants it actually observes, which Zipf's law keeps tiny
relative to the population: with the default skew, a 100k-arrival trace
touches a few thousand distinct tenants out of 1.2 million.

Draws use numpy's unbounded Zipf sampler folded into ``[0,
population)`` — a single vectorized draw per trace, fully determined by
the rng the caller hands in, with the head ranks (tenant 0, 1, 2, ...)
carrying the classic power-law share of the traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TenantMix"]


@dataclass(frozen=True)
class TenantMix:
    """Zipf-distributed tenant indices over a synthetic population."""

    #: Synthetic client population; tenant ids are ``[0, population)``.
    population: int = 1_200_000
    #: Zipf exponent (> 1); larger = heavier head.
    zipf_s: float = 1.3
    #: Display prefix for :meth:`name`.
    prefix: str = "t"

    def __post_init__(self):
        if self.population < 1:
            raise ValueError("population must be >= 1")
        if self.zipf_s <= 1.0:
            raise ValueError("zipf_s must be > 1 (numpy Zipf requirement)")

    def draw(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` tenant indices, Zipf-skewed, folded into the population."""
        if n <= 0:
            return np.empty(0, dtype=np.int64)
        return (rng.zipf(self.zipf_s, size=n).astype(np.int64) - 1) % self.population

    def name(self, index: int) -> str:
        """Stable display name of one tenant index (``t0000042``)."""
        return f"{self.prefix}{index:07d}"
