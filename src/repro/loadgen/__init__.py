"""Open-loop, trace-driven workload synthesis at million-client scale.

The load engine answers the question PR 10's sharded control plane
exists for: *what does fine-grained lease churn from a million tenants
look like, and does the control plane keep up?*  It is deliberately
**open loop** — arrivals come from a seeded stochastic process that
does not slow down when the platform backs up, so queueing at a
saturated shard shows up as tail latency instead of being hidden by a
polite closed-loop driver (the distinction Jindal et al.'s FDN
evaluation and the kaas-autoscaling ``load.py`` generator both insist
on).

Three pieces, all plain picklable data:

* :mod:`~repro.loadgen.arrivals` — when requests arrive:
  :class:`PoissonArrivals` (memoryless steady state) and
  :class:`MmppArrivals` (Markov-modulated bursts: a seeded state chain
  switches the instantaneous rate, producing the flash-crowd /
  quiet-period alternation real FaaS traces show).
* :mod:`~repro.loadgen.tenants` — who sends them: :class:`TenantMix`
  draws tenant *indices* from a folded Zipf over a population of a
  million-plus synthetic clients.  The population is a number, not a
  list: memory scales with arrivals observed, never with clients
  modeled.
* :mod:`~repro.loadgen.trace` — the product: :class:`LoadSpec` (the
  seeded recipe) and :class:`WorkloadTrace` (the materialized arrival
  trace), with byte-identical JSON round-trips and pickle support so
  traces survive the parallel sweep fabric and CLI hand-offs.

Determinism contract: ``synthesize(spec)`` is a pure function of the
spec (seed included) — same spec, same trace, in any interpreter, in
any worker process (``tests/loadgen/test_determinism.py`` asserts this
across fresh interpreters).
"""

from .arrivals import ArrivalProcess, MmppArrivals, PoissonArrivals
from .tenants import TenantMix
from .trace import LoadSpec, WorkloadTrace, synthesize

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MmppArrivals",
    "TenantMix",
    "LoadSpec",
    "WorkloadTrace",
    "synthesize",
]
