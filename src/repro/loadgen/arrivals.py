"""Seeded arrival processes for the open-loop load engine.

An arrival process turns ``(window, rng)`` into a sorted array of
arrival timestamps.  Both processes here are frozen dataclasses of
plain numbers — they pickle across the sweep fabric's pool boundary and
round-trip through JSON — and both draw *only* from the generator they
are handed, so the caller owns the seed discipline.

:class:`PoissonArrivals` is the memoryless baseline: exponential
inter-arrival gaps at a constant rate.

:class:`MmppArrivals` is a Markov-modulated Poisson process, the
standard model for bursty FaaS traffic: a continuous-time state chain
(exponential dwell times) switches the instantaneous arrival rate
between regimes — e.g. a quiet 200 req/s background and a 5000 req/s
flash crowd.  Within each dwell segment arrivals are Poisson at the
state's rate; the arrival clock restarts at each switch (piecewise
Poisson), which keeps synthesis a single linear pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["ArrivalProcess", "PoissonArrivals", "MmppArrivals"]


@runtime_checkable
class ArrivalProcess(Protocol):
    """Anything that can emit sorted arrival times over a window."""

    def times(self, window_s: float, rng: np.random.Generator) -> np.ndarray: ...

    def mean_rate_per_s(self) -> float: ...


@dataclass(frozen=True)
class PoissonArrivals:
    """Homogeneous Poisson arrivals at ``rate_per_s``."""

    rate_per_s: float

    def __post_init__(self):
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")

    def mean_rate_per_s(self) -> float:
        return self.rate_per_s

    def times(self, window_s: float, rng: np.random.Generator) -> np.ndarray:
        """Sorted arrival timestamps in ``[0, window_s)``.

        Draws gaps in one vectorized block sized from the expected count
        plus a 6-sigma margin, topping up in the (rare) tail case — the
        draw *sequence* is still fully determined by the rng state.
        """
        if window_s <= 0:
            return np.empty(0, dtype=np.float64)
        expected = self.rate_per_s * window_s
        block = int(expected + 6.0 * np.sqrt(expected) + 16)
        gaps = rng.exponential(1.0 / self.rate_per_s, size=block)
        times = np.cumsum(gaps)
        while times[-1] < window_s:  # pragma: no cover - 6-sigma tail
            more = rng.exponential(1.0 / self.rate_per_s, size=block)
            times = np.concatenate([times, times[-1] + np.cumsum(more)])
        return times[times < window_s]


@dataclass(frozen=True)
class MmppArrivals:
    """Markov-modulated Poisson arrivals.

    ``rates_per_s`` lists the per-state arrival rates;
    ``mean_dwell_s`` the expected time spent in a state before the
    chain jumps (dwell times are exponential).  With more than two
    states the successor is drawn uniformly among the *other* states,
    so the chain never self-loops and every regime recurs.
    """

    rates_per_s: tuple[float, ...] = (200.0, 5000.0)
    mean_dwell_s: float = 1.0

    def __post_init__(self):
        if len(self.rates_per_s) < 2:
            raise ValueError("MMPP needs at least two states")
        if any(r <= 0 for r in self.rates_per_s):
            raise ValueError("every state rate must be positive")
        if self.mean_dwell_s <= 0:
            raise ValueError("mean_dwell_s must be positive")

    def mean_rate_per_s(self) -> float:
        """Long-run mean rate (states are visited with equal frequency
        and hold for i.i.d. dwells, so the plain average applies)."""
        return float(np.mean(self.rates_per_s))

    def times(self, window_s: float, rng: np.random.Generator) -> np.ndarray:
        if window_s <= 0:
            return np.empty(0, dtype=np.float64)
        state = 0
        t = 0.0
        chunks: list[np.ndarray] = []
        n_states = len(self.rates_per_s)
        while t < window_s:
            dwell = float(rng.exponential(self.mean_dwell_s))
            end = min(t + dwell, window_s)
            rate = self.rates_per_s[state]
            expected = rate * (end - t)
            block = int(expected + 6.0 * np.sqrt(expected) + 16)
            gaps = rng.exponential(1.0 / rate, size=block)
            seg = t + np.cumsum(gaps)
            while seg.size and seg[-1] < end:  # pragma: no cover - tail
                more = rng.exponential(1.0 / rate, size=block)
                seg = np.concatenate([seg, seg[-1] + np.cumsum(more)])
            chunks.append(seg[seg < end])
            t = t + dwell
            if n_states == 2:
                state = 1 - state
            else:
                hop = int(rng.integers(n_states - 1))
                state = hop if hop < state else hop + 1
        if not chunks:  # pragma: no cover - window always yields >= 1 segment
            return np.empty(0, dtype=np.float64)
        return np.concatenate(chunks)
