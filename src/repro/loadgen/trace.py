"""Load specs and materialized workload traces.

A :class:`LoadSpec` is the seeded *recipe* — arrival process, tenant
mix, window, per-request service time, seed — and
:func:`synthesize` turns it into a :class:`WorkloadTrace`: the sorted
``(time, tenant)`` arrival sequence the loadstorm experiment replays
against the sharded control plane.

Both objects are plain data with three hard round-trip guarantees
(``tests/loadgen/test_determinism.py``):

* **seed round-trip** — ``synthesize(spec)`` is a pure function of the
  spec; the same spec yields an identical trace in a fresh interpreter;
* **JSON byte-identity** — ``WorkloadTrace.from_json(t.to_json()).to_json()
  == t.to_json()`` (floats survive via Python's shortest-repr float
  serialization, which JSON round-trips exactly);
* **pickle round-trip** — specs and traces cross the sweep fabric's
  process-pool boundary unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Union

import numpy as np

from .arrivals import MmppArrivals, PoissonArrivals
from .tenants import TenantMix

__all__ = ["LoadSpec", "WorkloadTrace", "synthesize"]

_ARRIVAL_KINDS = {"poisson": PoissonArrivals, "mmpp": MmppArrivals}


def _arrivals_to_dict(arrivals: Union[PoissonArrivals, MmppArrivals]) -> dict:
    if isinstance(arrivals, PoissonArrivals):
        return {"kind": "poisson", "rate_per_s": arrivals.rate_per_s}
    return {"kind": "mmpp", "rates_per_s": list(arrivals.rates_per_s),
            "mean_dwell_s": arrivals.mean_dwell_s}


def _arrivals_from_dict(data: dict) -> Union[PoissonArrivals, MmppArrivals]:
    kind = data.get("kind")
    if kind == "poisson":
        return PoissonArrivals(rate_per_s=data["rate_per_s"])
    if kind == "mmpp":
        return MmppArrivals(rates_per_s=tuple(data["rates_per_s"]),
                            mean_dwell_s=data["mean_dwell_s"])
    raise ValueError(
        f"unknown arrival kind {kind!r} (one of {sorted(_ARRIVAL_KINDS)})"
    )


@dataclass(frozen=True)
class LoadSpec:
    """The seeded recipe for one synthetic workload."""

    arrivals: Union[PoissonArrivals, MmppArrivals] = field(
        default_factory=lambda: PoissonArrivals(rate_per_s=2000.0)
    )
    mix: TenantMix = field(default_factory=TenantMix)
    window_s: float = 10.0
    #: Simulated hold time of one granted lease (the function runtime).
    service_s: float = 0.05
    seed: int = 0

    def __post_init__(self):
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.service_s < 0:
            raise ValueError("service_s must be non-negative")

    def expected_arrivals(self) -> int:
        """Rough trace size: mean rate x window."""
        return int(self.arrivals.mean_rate_per_s() * self.window_s)

    def to_dict(self) -> dict:
        return {
            "arrivals": _arrivals_to_dict(self.arrivals),
            "mix": {"population": self.mix.population,
                    "zipf_s": self.mix.zipf_s, "prefix": self.mix.prefix},
            "window_s": self.window_s,
            "service_s": self.service_s,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LoadSpec":
        mix = data.get("mix", {})
        return cls(
            arrivals=_arrivals_from_dict(data["arrivals"]),
            mix=TenantMix(population=mix.get("population", 1_200_000),
                          zipf_s=mix.get("zipf_s", 1.3),
                          prefix=mix.get("prefix", "t")),
            window_s=data["window_s"],
            service_s=data["service_s"],
            seed=data["seed"],
        )


class WorkloadTrace:
    """A materialized arrival trace: parallel time / tenant sequences.

    ``times`` are sorted simulated seconds; ``tenants[i]`` is the tenant
    index of arrival ``i``.  ``population`` records the synthetic client
    count the trace was drawn from (the "how many clients is this?"
    answer), independent of how many distinct tenants the draw touched.
    """

    __slots__ = ("times", "tenants", "population", "window_s", "service_s", "seed")

    def __init__(self, times, tenants, population: int, window_s: float,
                 service_s: float, seed: int):
        self.times = [float(t) for t in times]
        self.tenants = [int(t) for t in tenants]
        if len(self.times) != len(self.tenants):
            raise ValueError("times and tenants must have equal length")
        self.population = int(population)
        self.window_s = float(window_s)
        self.service_s = float(service_s)
        self.seed = int(seed)

    def __len__(self) -> int:
        return len(self.times)

    def __eq__(self, other) -> bool:
        if not isinstance(other, WorkloadTrace):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def distinct_tenants(self) -> int:
        """Tenants the draw actually touched (<< population under Zipf)."""
        return len(set(self.tenants))

    def peak_rate_per_s(self, bucket_s: float = 0.5) -> float:
        """Max arrivals/s over fixed buckets — the burst the plane must ride."""
        if not self.times:
            return 0.0
        counts: dict[int, int] = {}
        for t in self.times:
            bucket = int(t / bucket_s)
            counts[bucket] = counts.get(bucket, 0) + 1
        return max(counts.values()) / bucket_s

    # -- (de)serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "population": self.population,
            "seed": self.seed,
            "service_s": self.service_s,
            "tenants": self.tenants,
            "times": self.times,
            "window_s": self.window_s,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadTrace":
        return cls(times=data["times"], tenants=data["tenants"],
                   population=data["population"], window_s=data["window_s"],
                   service_s=data["service_s"], seed=data["seed"])

    @classmethod
    def from_json(cls, text: str) -> "WorkloadTrace":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "WorkloadTrace":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    # -- pickle (explicit, so __slots__ stays cheap) -------------------------
    def __getstate__(self) -> dict:
        return self.to_dict()

    def __setstate__(self, state: dict) -> None:
        restored = WorkloadTrace.from_dict(state)
        for slot in self.__slots__:
            object.__setattr__(self, slot, getattr(restored, slot))


def synthesize(spec: LoadSpec) -> WorkloadTrace:
    """Materialize a spec: pure function of the spec (seed included).

    One generator, two draw phases in a fixed order — arrival times,
    then tenant indices — so the trace is bit-reproducible in any
    interpreter and any pool worker.
    """
    rng = np.random.default_rng(spec.seed)
    times = spec.arrivals.times(spec.window_s, rng)
    tenants = spec.mix.draw(len(times), rng)
    return WorkloadTrace(
        times=times, tenants=tenants, population=spec.mix.population,
        window_s=spec.window_s, service_s=spec.service_s, seed=spec.seed,
    )
