"""Setup shim.

The reproduction environment is offline and lacks the ``wheel`` package,
so PEP-660 editable installs are unavailable; this shim enables the legacy
``pip install -e . --no-build-isolation --no-use-pep517`` path.  All
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
