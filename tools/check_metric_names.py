#!/usr/bin/env python3
"""Lint: telemetry metric names must follow the repro naming convention.

Every metric registered anywhere in ``src/repro`` — a string literal
passed to ``.counter(`` / ``.gauge(`` / ``.histogram(`` — must match
``repro_<subsystem>_<name>_<unit>`` with the unit drawn from the closed
set in :data:`repro.telemetry.metrics.METRIC_UNITS` and the subsystem
from :data:`KNOWN_SUBSYSTEMS` (a new subsystem namespace is an API
decision: add it to the set here in the same PR that introduces it).
Run standalone::

    python tools/check_metric_names.py

or via the test suite (``tests/telemetry/test_naming.py``), which is
what keeps metric naming from drifting between PRs.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: Subsystem namespaces metrics may live in (``repro_<subsystem>_...``).
KNOWN_SUBSYSTEMS = frozenset({
    "capacity",    # capacity control plane: forecast/autoscale/admit/burst
    "controlplane",  # replicated manager: heartbeats/failover/fencing
    "executor",
    "faults",
    "gpu",         # GPU control plane: leases/batching/warm pools/replay
    "manager",
    "memservice",  # durable memory service: replication/migration/repair
    "red",         # streaming per-tenant RED (rate/errors/duration) rollup
    "scheduler",
    "shard",       # sharded control plane: batching/migration/conservation
    "slo",         # sliding-window burn-rate monitor
    "warmpool",
})

_REGISTRATION = re.compile(
    r"""\.(?:counter|gauge|histogram)\(\s*\n?\s*(?P<quote>["'])(?P<name>[^"']+)(?P=quote)"""
)


def find_metric_names(root: pathlib.Path = SRC_ROOT) -> list[tuple[str, int, str]]:
    """(relative path, line number, metric name) for every registration."""
    found: list[tuple[str, int, str]] = []
    for path in sorted(root.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        try:
            shown = str(path.relative_to(REPO_ROOT))
        except ValueError:
            shown = str(path)
        for match in _REGISTRATION.finditer(text):
            line = text.count("\n", 0, match.start()) + 1
            found.append((shown, line, match.group("name")))
    return found


def violations(root: pathlib.Path = SRC_ROOT) -> list[str]:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.telemetry.metrics import METRIC_NAME_RE

    bad = []
    for path, line, name in find_metric_names(root):
        if not METRIC_NAME_RE.match(name):
            bad.append(f"{path}:{line}: {name!r} violates repro_<subsystem>_<name>_<unit>")
            continue
        subsystem = name.split("_", 2)[1]
        if subsystem not in KNOWN_SUBSYSTEMS:
            bad.append(
                f"{path}:{line}: {name!r} uses unknown subsystem {subsystem!r}"
                " (add it to KNOWN_SUBSYSTEMS if intentional)"
            )
    return bad


def main() -> int:
    names = find_metric_names()
    problems = violations()
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(names)} metric registrations, {len(problems)} violation(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
