#!/usr/bin/env python3
"""Lint: committed perf baselines and the perfgate registry must agree.

``tools/perfgate.py`` only gates what :data:`~tools.perfgate.BENCHES`
registers, and a registered suite only gates if its committed
``BENCH_<suite>.json`` baseline actually exists.  Both halves drift
silently: a new benchmark writes its baseline but never registers
(nothing gates it), or a suite is renamed/removed and its stale
baseline keeps sitting at the repo root looking authoritative.  This
check enforces the bijection:

* every ``BENCH_*.json`` at the repo root is some registered suite's
  baseline path;
* every registered suite's baseline file exists, is valid JSON, and
  carries the perfgate schema (a ``scenarios`` table and a
  ``tolerance`` map whose keys cover every scenario metric);
* every registered suite's benchmark module exists under
  ``benchmarks/`` and exposes the measurement interface perfgate calls
  (``measure_all`` / ``DEFAULT_REPEATS``).

Run standalone or through the unified entry point::

    python tools/check_benches.py
    python -m tools.checks benches
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))


def _baseline_problems(suite: str, path: pathlib.Path) -> list[str]:
    try:
        baseline = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        return [f"suite {suite!r}: baseline {path.name} is not valid JSON ({exc})"]
    problems: list[str] = []
    scenarios = baseline.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        problems.append(
            f"suite {suite!r}: baseline {path.name} has no 'scenarios' table "
            f"(perfgate schema)"
        )
        scenarios = {}
    tolerance = baseline.get("tolerance")
    if not isinstance(tolerance, dict):
        problems.append(
            f"suite {suite!r}: baseline {path.name} has no 'tolerance' map "
            f"(perfgate schema)"
        )
        tolerance = {}
    for name, recorded in scenarios.items():
        metric = recorded.get("metric") if isinstance(recorded, dict) else None
        if not metric:
            problems.append(
                f"suite {suite!r}: scenario {name!r} in {path.name} has no "
                f"'metric'"
            )
        elif tolerance and metric not in tolerance:
            problems.append(
                f"suite {suite!r}: scenario {name!r} metric {metric!r} has no "
                f"tolerance in {path.name}"
            )
        if isinstance(recorded, dict) and "after" not in recorded:
            problems.append(
                f"suite {suite!r}: scenario {name!r} in {path.name} has no "
                f"'after' baseline value"
            )
    return problems


def _module_problems(suite: str, module_name: str) -> list[str]:
    module_path = REPO_ROOT / "benchmarks" / f"{module_name}.py"
    if not module_path.exists():
        return [f"suite {suite!r}: benchmark module benchmarks/{module_name}.py "
                f"does not exist"]
    source = module_path.read_text(encoding="utf-8")
    problems = []
    for required in ("measure_all", "DEFAULT_REPEATS"):
        if required not in source:
            problems.append(
                f"suite {suite!r}: benchmarks/{module_name}.py does not define "
                f"{required} (perfgate measurement interface)"
            )
    return problems


def violations(root: pathlib.Path | None = None) -> list[str]:
    """Violation lines for the baseline <-> registry bijection.

    ``root`` overrides the repo root for tests; the perfgate registry is
    always the real one (its baseline paths are re-anchored to ``root``).
    """
    import perfgate

    root = REPO_ROOT if root is None else root
    problems: list[str] = []
    registered: dict[str, str] = {}
    for suite, (module_name, baseline_path) in sorted(perfgate.BENCHES.items()):
        registered[baseline_path.name] = suite
        anchored = root / baseline_path.name
        if not anchored.exists():
            problems.append(
                f"suite {suite!r}: registered baseline {baseline_path.name} "
                f"does not exist at the repo root"
            )
            continue
        problems.extend(_baseline_problems(suite, anchored))
        if root == REPO_ROOT:
            problems.extend(_module_problems(suite, module_name))
    for path in sorted(root.glob("BENCH_*.json")):
        if path.name not in registered:
            problems.append(
                f"{path.name}: no perfgate suite registers this baseline "
                f"(add it to tools/perfgate.py BENCHES or delete the file)"
            )
    return problems


def main() -> int:
    problems = violations()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} bench-baseline violation(s)", file=sys.stderr)
        return 1
    print("bench baselines ok: every BENCH_*.json is gated and every "
          "registered suite has a valid baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
