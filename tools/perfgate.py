#!/usr/bin/env python3
"""Perf gate: benchmarked scenarios must not regress against their baselines.

Measures the scenarios defined in the registered benchmark modules
(``benchmarks/bench_engine.py`` -> ``BENCH_engine.json``,
``benchmarks/bench_obs.py`` -> ``BENCH_obs.json``) and compares each
against its committed baseline:

    python tools/perfgate.py                  # check all: exit 1 on regression
    python tools/perfgate.py --bench engine   # check one suite only
    python tools/perfgate.py --report         # measure + print, never fail
    python tools/perfgate.py --update         # rewrite the "after" baselines

A scenario regresses when its live measurement is worse than the
recorded ``after`` value by more than the tolerance configured in the
baseline file (throughput scenarios must not drop below
``after * (1 - tol)``; wall-time scenarios must not exceed
``after * (1 + tol)``).  Tolerances are deliberately loose — wall time
on shared CI runners is noisy — so the gate catches structural
regressions (an accidentally quadratic queue, a reintroduced per-event
allocation), not scheduling jitter.  ``before``/``speedup`` record the
pre-/post-optimization comparison for the fast-path PR and are never
overwritten by ``--update``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_engine.json"

#: suite name -> (benchmark module under benchmarks/, committed baseline).
BENCHES: dict[str, tuple[str, pathlib.Path]] = {
    "engine": ("bench_engine", BASELINE_PATH),
    "obs": ("bench_obs", REPO_ROOT / "BENCH_obs.json"),
    "sweep": ("bench_sweep", REPO_ROOT / "BENCH_sweep.json"),
    "gpu": ("bench_gpu", REPO_ROOT / "BENCH_gpu.json"),
    "managerha": ("bench_managerha", REPO_ROOT / "BENCH_managerha.json"),
    "autoscale": ("bench_autoscale", REPO_ROOT / "BENCH_autoscale.json"),
    "memdurability": ("bench_memdurability", REPO_ROOT / "BENCH_memdurability.json"),
    "loadstorm": ("bench_loadstorm", REPO_ROOT / "BENCH_loadstorm.json"),
}

#: Floor metrics gate on "must not drop" (throughput, completion);
#: everything else (wall time, tail latency) gates on a ceiling.
HIGHER_IS_BETTER = {"events_per_s", "scenarios_per_min", "requests_per_s",
                    "completion_ratio"}

#: Display/rounding unit per floor metric.
_UNITS = {"events_per_s": "events/s", "scenarios_per_min": "scenarios/min",
          "requests_per_s": "requests/s", "completion_ratio": "completed/issued"}

#: Display unit per ceiling metric (default: seconds of wall clock).
_CEILING_UNITS = {"wall_s": "s wall", "latency_ms": "ms latency"}

# Make both the package under src/ and the benchmarks directory
# importable regardless of how this script is invoked.
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))


def load_baseline(path: pathlib.Path = BASELINE_PATH) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_baseline(baseline: dict, path: pathlib.Path = BASELINE_PATH) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _fmt(value: float) -> str:
    """Small floor metrics (ratios) keep decimals; big ones group digits."""
    return f"{value:,.0f}" if value >= 100 else f"{value:.4f}"


def compare(baseline: dict, measurements: dict[str, dict]) -> list[str]:
    """Regression lines (empty = within tolerance).

    Pure function of the two dicts so the gate logic is unit-testable
    without timing anything.
    """
    problems: list[str] = []
    tolerances = baseline.get("tolerance", {})
    for name, recorded in baseline.get("scenarios", {}).items():
        measured = measurements.get(name)
        if measured is None:
            problems.append(f"{name}: scenario missing from measurements")
            continue
        metric = recorded["metric"]
        if measured["metric"] != metric:
            problems.append(
                f"{name}: metric mismatch (baseline {metric!r}, measured {measured['metric']!r})"
            )
            continue
        tol = float(tolerances.get(metric, 0.3))
        value = float(measured["value"])
        after = float(recorded["after"])
        if metric in HIGHER_IS_BETTER:
            floor = after * (1.0 - tol)
            if value < floor:
                unit = _UNITS.get(metric, metric)
                problems.append(
                    f"{name}: {_fmt(value)} {unit} is below the tolerance floor "
                    f"{_fmt(floor)} (baseline {_fmt(after)}, tol {tol:.0%})"
                )
        else:
            ceiling = after * (1.0 + tol)
            if value > ceiling:
                unit = _CEILING_UNITS.get(metric, metric)
                problems.append(
                    f"{name}: {value:.4f} {unit} exceeds the tolerance ceiling "
                    f"{ceiling:.4f} (baseline {after:.4f}, tol {tol:.0%})"
                )
    return problems


def _format_row(name: str, recorded: dict, measured: dict) -> str:
    metric = recorded["metric"]
    before = float(recorded.get("before", recorded["after"]))
    speedup = float(recorded.get("speedup", 1.0))
    note = " [modeled]" if measured.get("modeled") else ""
    if metric in HIGHER_IS_BETTER:
        unit = _UNITS.get(metric, metric)
        return (
            f"  {name:<16} {_fmt(float(measured['value'])):>12} {unit}{note}"
            f"  (baseline {_fmt(float(recorded['after']))},"
            f" pre-optimization {_fmt(before)},"
            f" recorded speedup {speedup:.2f}x)"
        )
    unit = _CEILING_UNITS.get(metric, metric)
    return (
        f"  {name:<16} {measured['value']:>12.4f} {unit}{note}"
        f"  (baseline {float(recorded['after']):.4f},"
        f" pre-optimization {before:.4f},"
        f" recorded speedup {speedup:.2f}x)"
    )


def _run_suite(suite: str, args: argparse.Namespace) -> list[str]:
    """Measure one registered bench suite; returns its regression lines."""
    import importlib

    module_name, baseline_path = BENCHES[suite]
    module = importlib.import_module(module_name)
    repeats = args.repeats if args.repeats is not None else module.DEFAULT_REPEATS
    baseline = load_baseline(baseline_path)
    measurements = module.measure_all(repeats)

    print(f"perfgate[{suite}]: {len(measurements)} scenario(s), best of {repeats}")
    for name, recorded in baseline.get("scenarios", {}).items():
        if name in measurements:
            print(_format_row(name, recorded, measurements[name]))

    if args.update:
        for name, measured in measurements.items():
            recorded = baseline["scenarios"].setdefault(name, {"metric": measured["metric"]})
            digits = 0 if measured["metric"] in _UNITS and measured["value"] >= 100 else 4
            recorded["after"] = round(measured["value"], digits)
            before = float(recorded.get("before", measured["value"]))
            recorded.setdefault("before", before)
            if measured["metric"] in HIGHER_IS_BETTER:
                recorded["speedup"] = round(measured["value"] / before, 2)
            else:
                recorded["speedup"] = round(before / measured["value"], 2)
            for extra in ("events", "scenarios", "workers", "modeled", "cores"):
                if extra in measured:
                    recorded[extra] = measured[extra]
        write_baseline(baseline, baseline_path)
        print(f"baseline updated -> {baseline_path}")
        return []

    return [f"[{suite}] {line}" for line in compare(baseline, measurements)]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--report", action="store_true",
                      help="measure and print without failing (CI mode)")
    mode.add_argument("--update", action="store_true",
                      help="rewrite the 'after' baselines from this machine")
    parser.add_argument("--bench", choices=[*BENCHES, "all"], default="all",
                        help="which benchmark suite to run (default: all)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of repeats per scenario (default from the bench module)")
    args = parser.parse_args(argv)

    suites = list(BENCHES) if args.bench == "all" else [args.bench]
    problems: list[str] = []
    for suite in suites:
        problems.extend(_run_suite(suite, args))

    if args.update:
        return 0
    for problem in problems:
        print(f"REGRESSION {problem}", file=sys.stderr)
    if args.report:
        if problems:
            print(f"{len(problems)} regression(s) (report-only mode, not failing)")
        else:
            print("all scenarios within tolerance")
        return 0
    if problems:
        return 1
    print("all scenarios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
