#!/usr/bin/env python3
"""Lint: the public API surface must match the checked-in manifest.

Snapshots the exported surface of the facade and subsystem packages —
every ``__all__`` name of :mod:`repro.api`, :mod:`repro.faults`, and
:mod:`repro.rfaas`, with callable signatures and public class members —
and compares it against ``tools/public_api.json``.  An unreviewed
signature change, a dropped re-export, or an accidental new export
fails the suite (``tests/api/test_public_api.py``); an *intentional*
change is recorded by regenerating the manifest::

    python tools/check_public_api.py            # check (exit 1 on drift)
    python tools/check_public_api.py --update   # rewrite the manifest

Same role for API shape that ``check_metric_names.py`` plays for metric
naming: the contract is enforced by CI, not by convention.
"""

from __future__ import annotations

import argparse
import inspect
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
MANIFEST_PATH = REPO_ROOT / "tools" / "public_api.json"

#: Modules whose exported surface is under contract.
MODULES = ("repro.api", "repro.capacity", "repro.controlplane",
           "repro.experiments.base", "repro.faults", "repro.gpuservice",
           "repro.loadgen", "repro.memservice", "repro.rfaas", "repro.shard",
           "repro.sweep")


def _signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (ValueError, TypeError):
        return "(...)"


def _describe_class(cls) -> dict:
    entry: dict = {"kind": "class", "signature": _signature_of(cls)}
    methods: dict[str, str] = {}
    properties: list[str] = []
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            properties.append(name)
        elif isinstance(member, (classmethod, staticmethod)):
            methods[name] = _signature_of(member.__func__)
        elif inspect.isfunction(member):
            methods[name] = _signature_of(member)
    if methods:
        entry["methods"] = methods
    if properties:
        entry["properties"] = properties
    bases = [b.__name__ for b in cls.__bases__ if b is not object]
    if bases:
        entry["bases"] = bases
    return entry


def _describe(obj) -> dict:
    if inspect.isclass(obj):
        return _describe_class(obj)
    if inspect.isfunction(obj) or inspect.isbuiltin(obj):
        return {"kind": "function", "signature": _signature_of(obj)}
    return {"kind": "value", "type": type(obj).__name__}


def snapshot() -> dict:
    """{module: {exported name: description}} for every contract module."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    import importlib

    surface: dict = {}
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", None)
        if exported is None:
            raise RuntimeError(f"{module_name} has no __all__")
        surface[module_name] = {
            name: _describe(getattr(module, name)) for name in sorted(exported)
        }
    return surface


def load_manifest(path: pathlib.Path = MANIFEST_PATH) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_manifest(surface: dict, path: pathlib.Path = MANIFEST_PATH) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(surface, fh, indent=2, sort_keys=True)
        fh.write("\n")


def violations() -> list[str]:
    """Human-readable drift lines; empty when surface == manifest."""
    current = snapshot()
    try:
        recorded = load_manifest()
    except FileNotFoundError:
        return [f"manifest missing: {MANIFEST_PATH} (run with --update to create)"]
    problems: list[str] = []
    for module_name in sorted(set(current) | set(recorded)):
        have = current.get(module_name, {})
        want = recorded.get(module_name, {})
        for name in sorted(set(have) | set(want)):
            if name not in want:
                problems.append(f"{module_name}.{name}: new export not in manifest")
            elif name not in have:
                problems.append(f"{module_name}.{name}: recorded export disappeared")
            elif have[name] != want[name]:
                problems.append(
                    f"{module_name}.{name}: surface changed\n"
                    f"  manifest: {json.dumps(want[name], sort_keys=True)}\n"
                    f"  current:  {json.dumps(have[name], sort_keys=True)}"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite tools/public_api.json from the current surface",
    )
    args = parser.parse_args(argv)
    if args.update:
        surface = snapshot()
        write_manifest(surface)
        total = sum(len(names) for names in surface.values())
        print(f"recorded {total} exports across {len(surface)} modules -> {MANIFEST_PATH}")
        return 0
    problems = violations()
    for problem in problems:
        print(problem, file=sys.stderr)
    total = sum(len(names) for names in snapshot().values())
    print(f"checked {total} public exports, {len(problems)} drift(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
