#!/usr/bin/env python3
"""Lint: every registered sweep must honor the parallel-runner contract.

:func:`repro.sweep.run_sweep` can only promise byte-identical output at
any ``jobs`` count if each registered sweep keeps two promises that
nothing in the type system enforces:

* its ``result_type`` exposes the :class:`repro.experiments.base.SweepResult`
  protocol — ``to_dict()`` / ``to_json()`` / ``format_report()`` plus a
  ``points`` attribute — so the CLI and JSON export work uniformly; and
* every :class:`~repro.experiments.base.ScenarioSpec` in its default
  plan crosses the process-pool boundary intact: a module-level ``fn``
  (closures and lambdas don't pickle), picklable ``params``, an ``int``
  seed, and a unique label (labels name scenarios in failure reports).

Run standalone or through the unified entry point::

    python tools/check_sweeps.py
    python -m tools.checks sweeps
"""

from __future__ import annotations

import pathlib
import pickle
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _result_type_problems(name: str, result_type: type) -> list[str]:
    problems: list[str] = []
    for method in ("to_dict", "to_json", "format_report"):
        if not callable(getattr(result_type, method, None)):
            problems.append(
                f"sweep {name!r}: result type {result_type.__name__} has no "
                f"{method}() (SweepResult protocol)"
            )
    fields = getattr(result_type, "__dataclass_fields__", {})
    annotations = getattr(result_type, "__annotations__", {})
    if "points" not in fields and "points" not in annotations:
        problems.append(
            f"sweep {name!r}: result type {result_type.__name__} has no "
            f"'points' attribute (SweepResult protocol)"
        )
    return problems


def _spec_problems(name: str, spec) -> list[str]:
    problems: list[str] = []
    fn = spec.fn
    qualname = getattr(fn, "__qualname__", "")
    if "<locals>" in qualname or "<lambda>" in qualname:
        problems.append(
            f"sweep {name!r}: scenario {spec.label!r} uses non-module-level "
            f"fn {qualname!r} (won't cross the pool boundary)"
        )
    else:
        try:
            pickle.loads(pickle.dumps(fn))
        except Exception as exc:  # noqa: BLE001 - any failure is the finding
            problems.append(
                f"sweep {name!r}: scenario {spec.label!r} fn does not pickle "
                f"({exc})"
            )
    try:
        pickle.loads(pickle.dumps(spec.params))
    except Exception as exc:  # noqa: BLE001
        problems.append(
            f"sweep {name!r}: scenario {spec.label!r} params do not pickle "
            f"({exc})"
        )
    if not isinstance(spec.seed, int):
        problems.append(
            f"sweep {name!r}: scenario {spec.label!r} seed is "
            f"{type(spec.seed).__name__}, not int"
        )
    return problems


def violations() -> list[str]:
    """Human-readable contract breaches; empty when every sweep conforms."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    # Importing repro.sweep registers every built-in sweep.
    import repro.sweep  # noqa: F401
    from repro.experiments.base import registered_sweeps

    registry = registered_sweeps()
    if not registry:
        return ["no sweeps registered (did repro.experiments stop importing them?)"]

    problems: list[str] = []
    for name, sweep in registry.items():
        problems.extend(_result_type_problems(name, sweep.result_type))
        try:
            plan = sweep.plan()
        except Exception as exc:  # noqa: BLE001
            problems.append(
                f"sweep {name!r}: default plan() raised {type(exc).__name__}: {exc}"
            )
            continue
        if not plan.scenarios:
            problems.append(f"sweep {name!r}: default plan has no scenarios")
        labels = [spec.label for spec in plan.scenarios]
        if len(labels) != len(set(labels)):
            problems.append(f"sweep {name!r}: duplicate scenario labels {labels}")
        for spec in plan.scenarios:
            problems.extend(_spec_problems(name, spec))
    return problems


def main() -> int:
    problems = violations()
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked registered sweeps, {len(problems)} violation(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
