"""Repo maintenance tooling: lints, the unified checks entry point, and
the perf gate.  ``python -m tools.checks`` runs every lint; see
``tools/perfgate.py`` for the benchmark regression gate.
"""
