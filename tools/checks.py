#!/usr/bin/env python3
"""Unified lint entry point: one command runs every repo check.

CI, the test suite, and humans all invoke the identical code path::

    python -m tools.checks                # run everything
    python -m tools.checks metric-names   # run one named check
    python -m tools.checks --list         # show registered checks

Each check is a zero-argument callable returning a list of
human-readable violation strings (empty = pass), so adding a check is
one registry entry.  The test wrappers (``tests/telemetry/test_naming.py``,
``tests/api/test_public_api.py``, ``tests/tools/test_checks.py``) call
:func:`run` / :func:`run_all` directly — a lint can never pass in CI and
fail under pytest or vice versa.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from . import check_benches, check_metric_names, check_public_api, check_sweeps

#: Registered checks: name -> zero-arg callable returning violation lines.
CHECKS: Dict[str, Callable[[], List[str]]] = {
    "benches": check_benches.violations,
    "metric-names": check_metric_names.violations,
    "public-api": check_public_api.violations,
    "sweeps": check_sweeps.violations,
}


def run(name: str) -> List[str]:
    """Run one registered check by name; returns its violation lines."""
    try:
        check = CHECKS[name]
    except KeyError:
        raise KeyError(
            f"unknown check {name!r} (registered: {', '.join(sorted(CHECKS))})"
        ) from None
    return check()


def run_all(names: List[str] | None = None) -> Dict[str, List[str]]:
    """Run the named checks (default: all); {check name: violations}."""
    selected = names if names else sorted(CHECKS)
    return {name: run(name) for name in selected}


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.checks", description=__doc__.splitlines()[0]
    )
    parser.add_argument("checks", nargs="*", metavar="CHECK",
                        help="check names to run (default: all)")
    parser.add_argument("--list", action="store_true", dest="list_checks",
                        help="list registered checks and exit")
    args = parser.parse_args(argv)

    if args.list_checks:
        for name in sorted(CHECKS):
            print(name)
        return 0

    try:
        results = run_all(args.checks)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    failed = 0
    for name, problems in results.items():
        status = "ok" if not problems else f"{len(problems)} violation(s)"
        print(f"{name}: {status}")
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        if problems:
            failed += 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
