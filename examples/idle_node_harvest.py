"""Idle-node harvesting: the full software-disaggregation loop.

Drives a synthetic Piz-Daint-style batch workload through the SLURM-like
scheduler while the disaggregation controller continuously registers idle
and partially-allocated nodes with the serverless resource manager.  A
stream of short function invocations then soaks up capacity that batch
jobs cannot use — and gets evicted the moment batch needs it back.

Run:  python examples/idle_node_harvest.py
"""

import numpy as np

from repro.cluster import Cluster, DAINT_MC, DragonflyTopology
from repro.containers import Image
from repro.disagg import ControllerConfig, DisaggregationController
from repro.interference import ResourceDemand
from repro.network import DrcManager, IBVERBS, NetworkFabric
from repro.rfaas import (
    FunctionRegistry,
    NodeLoadRegistry,
    NoCapacityError,
    ResourceManager,
    RFaaSClient,
)
from repro.sim import Environment
from repro.slurm import (
    BatchScheduler,
    UtilizationSampler,
    WorkloadConfig,
    WorkloadGenerator,
    drive_workload,
)

GiB = 1024**3
MiB = 1024**2

NODES = 24
HOURS = 2.0


def main() -> None:
    env = Environment()
    cluster = Cluster(topology=DragonflyTopology(nodes_per_group=4))
    cluster.add_nodes("n", NODES, DAINT_MC)
    scheduler = BatchScheduler(env, cluster)
    drc = DrcManager()
    fabric = NetworkFabric(env, cluster, IBVERBS, rng=np.random.default_rng(0), drc=drc)
    loads = NodeLoadRegistry(cluster)
    manager = ResourceManager(env, cluster, loads=loads, drc=drc)
    controller = DisaggregationController(
        scheduler, manager,
        config=ControllerConfig(reserve_cores=1, immediate_reclaim=True),
    )

    # Batch workload: high-utilization synthetic trace.
    generator = WorkloadGenerator(
        np.random.default_rng(1), NODES,
        WorkloadConfig(target_utilization=0.9, runtime_median_s=300.0,
                       max_runtime_s=1800.0, max_nodes=NODES // 3,
                       shared_fraction=0.7),
    )
    drive_workload(env, scheduler, generator, duration=HOURS * 3600)
    sampler = UtilizationSampler(env, scheduler, interval=120.0)

    # Serverless workload: short functions, submitted back-to-back.
    functions = FunctionRegistry()
    image = Image("nas-kernels:latest", size_bytes=200 * MiB)
    functions.register(
        "ep-kernel", image, runtime_s=1.4,
        demand=ResourceDemand(cores=1, membw=0.25e9, llc_bytes=1 * MiB, frac_membw=0.02),
    )
    stats = {"ok": 0, "rejected": 0, "function_core_seconds": 0.0}

    def function_stream(tag: int):
        client = RFaaSClient(env, manager, fabric, functions,
                             client_node=f"n{tag % NODES:04d}", name=f"stream-{tag}")
        while env.now < HOURS * 3600:
            try:
                result = yield client.invoke("ep-kernel", payload_bytes=64 * 1024)
            except NoCapacityError:
                yield env.timeout(30.0)
                continue
            if result.ok:
                stats["ok"] += 1
                stats["function_core_seconds"] += result.timings.execution
            else:
                stats["rejected"] += 1
                yield env.timeout(30.0)

    for tag in range(8):
        env.process(function_stream(tag))

    env.run(until=HOURS * 3600)

    batch_core_seconds = sum(
        job.spec.total_cores * job.actual_runtime for job in scheduler.completed
    )
    total_core_seconds = cluster.total_cores() * HOURS * 3600
    print(f"cluster: {NODES} nodes x {DAINT_MC.cores} cores, {HOURS:.0f} h horizon")
    print(f"batch jobs completed:        {len(scheduler.completed)}")
    print(f"function invocations served: {stats['ok']} (rejected: {stats['rejected']})")
    print(f"controller registrations:    idle={controller.idle_registrations},"
          f" co-located={controller.coloc_registrations}, reclaims={controller.reclaims}")
    batch_util = batch_core_seconds / total_core_seconds
    fn_util = stats["function_core_seconds"] / total_core_seconds
    print(f"batch core utilization:      {batch_util * 100:.1f}%")
    print(f"serverless adds:             +{fn_util * 100:.2f}% core utilization"
          f" from capacity batch could not use")


if __name__ == "__main__":
    main()
