"""Quickstart: invoke HPC serverless functions on a simulated cluster.

Builds a two-node Cray-like cluster, registers one node's spare capacity
with the rFaaS resource manager, registers a function, and runs a few
invocations — printing the latency breakdown that makes HPC FaaS
different from cloud FaaS (microseconds, not milliseconds, once warm).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cluster import Cluster, DAINT_MC, DragonflyTopology
from repro.containers import Image
from repro.interference import ResourceDemand
from repro.network import DrcManager, NetworkFabric, UGNI
from repro.rfaas import (
    FunctionRegistry,
    NodeLoadRegistry,
    ResourceManager,
    RFaaSClient,
)
from repro.sim import Environment

GiB = 1024**3
MiB = 1024**2


def main() -> None:
    # --- the machine --------------------------------------------------------
    env = Environment()
    cluster = Cluster(topology=DragonflyTopology(nodes_per_group=2))
    cluster.add_nodes("daint", 2, DAINT_MC)
    drc = DrcManager()
    fabric = NetworkFabric(env, cluster, UGNI, rng=np.random.default_rng(0), drc=drc)

    # --- the serverless platform ------------------------------------------------
    loads = NodeLoadRegistry(cluster)
    manager = ResourceManager(env, cluster, loads=loads, drc=drc)
    # A batch-system integration would call this when capacity appears:
    manager.register_node("daint0001", cores=4, memory_bytes=16 * GiB)

    # --- a function ----------------------------------------------------------------
    functions = FunctionRegistry()
    image = Image(name="solver:latest", size_bytes=280 * MiB)
    functions.register(
        "solve",
        image,
        runtime_s=0.050,  # 50 ms of compute per invocation
        demand=ResourceDemand(cores=1, membw=2e9, llc_bytes=4 * MiB, frac_membw=0.25),
        output_bytes=64 * 1024,
    )

    # --- invoke ---------------------------------------------------------------------
    client = RFaaSClient(env, manager, fabric, functions, client_node="daint0000")

    def workload():
        for i in range(5):
            result = yield client.invoke("solve", payload_bytes=256 * 1024)
            t = result.timings
            print(
                f"invocation {i}: {result.startup_kind:>8} start | "
                f"net out {t.network_out * 1e6:7.1f} us | "
                f"dispatch {t.dispatch * 1e6:6.2f} us | "
                f"startup {t.startup * 1e3:7.2f} ms | "
                f"exec {t.execution * 1e3:6.2f} ms | "
                f"net back {t.network_back * 1e6:7.1f} us"
            )

    env.process(workload())
    env.run()
    print(f"\nsimulated time elapsed: {env.now * 1e3:.2f} ms")
    print("note: invocation 0 pays the container cold start; the rest are free.")


if __name__ == "__main__":
    main()
