"""Remote memory as a service: paging into another node's idle memory.

A memory-service function pins a 2 GB RDMA buffer in a node's unused
memory (Sec. III-C).  A client application on another node then uses it
for remote paging: an LRU-resident working set backed by the remote
buffer, with faults and writebacks travelling as one-sided RDMA ops over
the simulated Aries fabric.

Run:  python examples/memory_service.py
"""

import numpy as np

from repro.cluster import Cluster, DAINT_MC, DragonflyTopology
from repro.memservice import MemoryClient, MemoryServiceFunction, RemotePager, TrafficPattern
from repro.network import DrcManager, NetworkFabric, UGNI
from repro.rfaas import NodeLoadRegistry
from repro.sim import Environment

GiB = 1024**3
MiB = 1024**2


def main() -> None:
    env = Environment()
    cluster = Cluster(topology=DragonflyTopology(nodes_per_group=2))
    cluster.add_nodes("n", 2, DAINT_MC)
    drc = DrcManager()
    cred = drc.acquire("memservice-job")
    drc.grant(cred.cred_id, "memservice-job", "app")
    fabric = NetworkFabric(env, cluster, UGNI, rng=np.random.default_rng(0), drc=drc)
    loads = NodeLoadRegistry(cluster)

    service = MemoryServiceFunction(env, cluster.node("n0001"),
                                    size_bytes=2 * GiB, loads=loads)

    def scenario():
        yield service.start()
        host = cluster.node("n0001")
        print(f"service: pinned {service.size_bytes / GiB:.0f} GiB on {host.name}"
              f" ({host.memory_utilization() * 100:.1f}% of node memory)")

        conn = yield fabric.connect("n0000", "n0001", user="app", cred_id=cred.cred_id)
        client = MemoryClient(env, fabric, service, conn)

        # Remote paging: 256 MiB working set, 64 MiB resident locally.
        pager = RemotePager(env, client, page_bytes=2 * MiB, resident_pages=32)
        rng = np.random.default_rng(42)
        t0 = env.now
        accesses = 600
        for _ in range(accesses):
            # Zipf-ish locality: mostly a hot set of 24 pages, tail to 128.
            if rng.random() < 0.85:
                page = int(rng.integers(0, 24))
            else:
                page = int(rng.integers(24, 128))
            yield pager.touch(page, dirty=bool(rng.random() < 0.3))
        yield pager.flush()
        elapsed = env.now - t0
        print(f"\npaging: {accesses} accesses in {elapsed * 1e3:.1f} ms simulated")
        print(f"  hits: {pager.hits}  faults: {pager.faults}"
              f"  writebacks: {pager.writebacks}"
              f"  hit rate: {pager.hits / accesses * 100:.1f}%")
        print(f"  remote traffic: read {service.bytes_read / MiB:.0f} MiB,"
              f" written {service.bytes_written / MiB:.0f} MiB")

        # A sustained RMA stream, as in the Fig. 11 perturbation study.
        pattern = TrafficPattern(op_bytes=10 * MiB, interval_s=0.001)
        ops = yield client.stream(pattern, duration_s=0.5)
        print(f"\nstream: {ops} x 10 MiB ops in 0.5 s"
              f" = {ops * 10 * MiB / 0.5 / 1e9:.2f} GB/s sustained")
        service.stop()
        print(f"service stopped; node memory back to"
              f" {host.memory_utilization() * 100:.1f}% used")

    env.process(scenario())
    env.run()


if __name__ == "__main__":
    main()
