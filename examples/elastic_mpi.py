"""Elastic MPI over serverless functions (Sec. IV-F).

A bulk-synchronous stencil-style program runs on MPI ranks that are
*leased from the serverless platform* instead of allocated by the batch
queue.  Between epochs the job grows from 4 to 10 ranks and later shrinks
to 3 — no restart, no reconfiguration, no batch-queue wait; the paper's
adaptive-MPI story with rFaaS as the provisioning backend.

Run:  python examples/elastic_mpi.py
"""

import numpy as np

from repro.cluster import Cluster, DAINT_MC, DragonflyTopology
from repro.mpifn import ElasticMpiGroup
from repro.network import DrcManager, IBVERBS, NetworkFabric
from repro.rfaas import NodeLoadRegistry, ResourceManager
from repro.sim import Environment

GiB = 1024**3
MiB = 1024**2

NODES = 6


def main() -> None:
    env = Environment()
    cluster = Cluster(topology=DragonflyTopology(nodes_per_group=2))
    cluster.add_nodes("n", NODES, DAINT_MC)
    drc = DrcManager()
    fabric = NetworkFabric(env, cluster, IBVERBS, rng=np.random.default_rng(0), drc=drc)
    manager = ResourceManager(env, cluster, loads=NodeLoadRegistry(cluster), drc=drc)
    for i in range(NODES):
        manager.register_node(f"n{i:04d}", cores=2, memory_bytes=8 * GiB)

    group = ElasticMpiGroup(env, manager, fabric, name="stencil")

    def epoch_fn(comm, rank, epoch, state):
        """One superstep: halo exchange with neighbours + global residual."""
        state.setdefault("residual", 1.0)
        left, right = (rank - 1) % comm.size, (rank + 1) % comm.size
        halo = 2 * MiB
        if comm.size > 1:
            yield comm.send(rank, right, halo, tag=epoch)
            yield comm.recv(rank, source=left, tag=epoch)
        state["residual"] *= 0.5
        total = yield comm.allreduce(rank, 8, value=state["residual"])
        state["total_residual"] = total

    def resize(epoch, grp):
        # The application detects available parallelism and adapts.
        return {2: 10, 4: 3}.get(epoch)

    def prog():
        comm = yield group.spawn(4)
        print(f"spawned {comm.size} ranks as serverless leases on nodes:"
              f" {sorted(set(comm.rank_nodes))}")
        report = yield group.run_bsp(epoch_fn, epochs=6, resize=resize)
        print("\nepoch  ranks  superstep time")
        for e, (size, t) in enumerate(zip(report.sizes, report.epoch_times)):
            print(f"  {e}      {size:2d}    {t * 1e3:7.2f} ms")
        if report.grow_latencies:
            print(f"\ngrowing the job took {report.grow_latencies[0] * 1e3:.2f} ms"
                  f" of provisioning latency (vs. minutes in a batch queue)")
        group.shutdown()

    env.process(prog())
    env.run()
    print(f"\nall leases returned: {manager.total_free_cores()}"
          f"/{manager.total_registered_cores()} registered cores free")


if __name__ == "__main__":
    main()
