"""Black-Scholes offloading with the live runtime (the Fig. 13a story).

Prices a real option portfolio three ways — serial, fully remote on warm
process executors, and "doubled resources" (local worker + remote
executors, split by the Eq.-1 LogP model) — then prints the measured
times, the calibrated model, and the predicted speedup on a machine with
enough free cores.

Run:  python examples/blackscholes_offload.py
"""

import os
import time

import numpy as np

from repro.local import LocalRuntime, payload_nbytes
from repro.offload import OffloadDispatcher, calibrate_model
from repro.workloads import generate_options, price_chunk, price_options, split_batch

OPTIONS = 500_000
ITERATIONS = 4
WORKERS = 2
CHUNKS = 12


def main() -> None:
    print(f"pricing {OPTIONS:,} options x {ITERATIONS} iterations"
          f" on {os.cpu_count()} host core(s)\n")
    batch = generate_options(OPTIONS, seed=7)
    payloads = split_batch(batch, CHUNKS)

    with LocalRuntime(workers=WORKERS) as runtime:
        runtime.register("price", "repro.workloads.blackscholes:price_chunk")
        cold = runtime.prewarm()
        print(f"executor cold start: {cold * 1e3:.0f} ms"
              f" (then the workers stay warm)")

        # Calibrate Eq. 1 with probe invocations.
        model = calibrate_model(runtime, "price", price_chunk, payloads[0],
                                iterations=ITERATIONS)
        print(f"Eq. 1 calibration: T_local={model.t_local * 1e3:.1f} ms,"
              f" T_inv={model.t_inv * 1e3:.1f} ms, L={model.latency * 1e3:.2f} ms,"
              f" Data_inv={model.data_per_task / 1024:.0f} KiB")
        print(f"  -> offloading profitable beyond N_local_min={model.n_local_min} tasks\n")

        # Serial baseline.
        t0 = time.perf_counter()
        serial = np.concatenate([price_chunk(p, iterations=ITERATIONS) for p in payloads])
        serial_s = time.perf_counter() - t0
        print(f"serial:  {serial_s * 1e3:8.1f} ms   1.00x")

        # Fully remote.
        t0 = time.perf_counter()
        remote = np.concatenate(runtime.map("price", payloads, iterations=ITERATIONS))
        remote_s = time.perf_counter() - t0
        print(f"remote:  {remote_s * 1e3:8.1f} ms   {serial_s / remote_s:.2f}x")

        # Doubled resources via the dispatcher.
        dispatcher = OffloadDispatcher(runtime, model)
        report = dispatcher.run("price", price_chunk, payloads, iterations=ITERATIONS)
        doubled = np.concatenate(report.results)
        print(f"doubled: {report.wall_time_s * 1e3:8.1f} ms"
              f"   {serial_s / report.wall_time_s:.2f}x"
              f"   (split: {report.plan.n_local} local / {report.plan.n_remote} remote,"
              f" remote hidden: {report.remote_hidden})")

        predicted = model.speedup(len(payloads), local_workers=1, remote_workers=WORKERS)
        print(f"\nEq. 1 predicted doubled speedup on >= {WORKERS + 1} free cores:"
              f" {predicted:.2f}x")
        if (os.cpu_count() or 1) <= WORKERS:
            print("(this host has too few cores for measured parallel speedup)")

        # Verify numerics.
        assert np.allclose(serial, remote) and np.allclose(serial, doubled)
        print("\nall three variants produced identical prices ✓")


if __name__ == "__main__":
    main()
