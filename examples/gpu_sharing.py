"""GPU disaggregation: co-located GPU functions vs. remote GPU access.

Shows the two Sec. III-D arguments in action on a simulated P100:

1. warm device data — a GPU function keeps its model weights resident, so
   repeated inference invocations skip the PCIe transfer, until a batch
   job's hard allocation evicts them;
2. co-located vs. remote GPU — an inference function with hundreds of
   kernels pays the network round trip on *every* kernel when the GPU is
   remote (rCUDA-style), but only a one-core co-location cost locally.

Run:  python examples/gpu_sharing.py
"""

from repro.cluster.specs import P100
from repro.gpu import GpuDevice, GpuFunctionSpec, inference_latency, run_gpu_function
from repro.network import UGNI
from repro.sim import Environment

GiB = 1024**3
MiB = 1024**2


def main() -> None:
    env = Environment()
    device = GpuDevice(env, P100)

    inference = GpuFunctionSpec(
        name="resnet-inference",
        kernel_count=300,            # hundreds of kernels with sync between
        kernel_time_s=25e-6,         # small per-layer kernels
        occupancy=0.6,
        input_bytes=128 * MiB,       # weights + activations on first call
        device_memory_bytes=1 * GiB,
    )

    times = []

    def scenario():
        # Three consecutive invocations: the first stages data, the rest
        # hit warm device memory.
        for _ in range(3):
            t = yield run_gpu_function(env, device, inference)
            times.append(t)
        # A batch job claims most of the device -> warm data is evicted.
        device.allocate_memory("batch-gpu-job", int(15.5 * GiB))
        t = yield run_gpu_function(env, device, inference)
        times.append(t)

    env.process(scenario())
    env.run()

    print("co-located GPU function (simulated P100):")
    labels = ["cold (stage 128 MiB)", "warm", "warm", "after batch evicted warm data"]
    for label, t in zip(labels, times):
        print(f"  {label:32s} {t * 1e3:7.2f} ms")
    print(f"  warm evictions under memory pressure: {device.warm_evictions}")

    local = inference_latency(inference, UGNI.params, remote=False, data_warm=True)
    remote = inference_latency(inference, UGNI.params, remote=True, data_warm=True)
    print("\nco-located vs remote GPU access (analytic, data warm):")
    print(f"  co-located: {local * 1e3:7.2f} ms")
    print(f"  remote:     {remote * 1e3:7.2f} ms"
          f"  (+{(remote / local - 1) * 100:.0f}% from {inference.kernel_count}"
          f" per-kernel round trips)")


if __name__ == "__main__":
    main()
