"""The co-location policy learning loop (Sec. III-E, Fig. 4).

Walks through the paper's decision pipeline for a MILC batch job sharing
its node with candidate NAS functions:

1. first encounters fall back to the *heuristic* (interference-model
   preview — resource requirement modeling);
2. observed co-locations are recorded in the global history DB;
3. subsequent decisions use the *history* as the primary metric —
   including rejecting a pair the heuristic would have admitted, once a
   bad experience is on record.

Run:  python examples/colocation_policy.py
"""

from repro.cluster import Cluster, DAINT_MC
from repro.colocation import CoLocationPolicy, Decision, PolicyConfig
from repro.interference import InterferenceModel
from repro.rfaas import NodeLoadRegistry
from repro.workloads import milc_model, nas_model

CANDIDATES = ("ep.W", "bt.W", "mg.W", "cg.A")


def main() -> None:
    cluster = Cluster()
    cluster.add_nodes("n", 1, DAINT_MC)
    node = cluster.node("n0000")
    loads = NodeLoadRegistry(cluster)
    model = InterferenceModel()
    policy = CoLocationPolicy(loads, config=PolicyConfig(max_batch_slowdown=1.05))

    # The batch job: MILC, 16 ranks, memory-bandwidth heavy.
    batch = milc_model(16).demand(16)
    loads.add("n0000", "batch", batch)
    node.allocate("milc-job", cores=16, kind="batch")
    batch_alone = model.slowdowns(DAINT_MC, [batch])[0]

    print("round 1 — no history, heuristic decides:")
    for key in CANDIDATES:
        demand = nas_model(key).demand(4)
        decision = policy.decide(node, demand, "milc")
        print(f"  {key:6s} -> {decision.value}")
        # Simulate actually running the admitted pairs and record what
        # happened (the feedback edge of Fig. 4).
        if decision.admitted:
            both = model.slowdowns(DAINT_MC, [batch, demand])
            policy.observe(
                "milc", key,
                batch_slowdown=max(1.0, both[0] / batch_alone),
                function_slowdown=max(
                    1.0, both[1] / model.slowdowns(DAINT_MC, [demand])[0]
                ),
            )

    # Suppose operations also ran MILC+cg.A elsewhere (or with an older,
    # laxer policy) and it went badly — the history now knows.
    policy.observe("milc", "cg.A", batch_slowdown=1.22, function_slowdown=1.6)

    print("\nhistory after round 1:")
    for fn, slow in policy.history.worst_partners("milc"):
        print(f"  milc + {fn:6s}: mean batch slowdown {slow:.3f}")

    print("\nround 2 — history is the primary metric:")
    for key in CANDIDATES:
        demand = nas_model(key).demand(4)
        decision = policy.decide(node, demand, "milc")
        source = "history" if policy.history.has("milc", key) else "heuristic"
        print(f"  {key:6s} -> {decision.value:18s} (decided by {source})")

    print("\ndecision counters:", {
        d.value: n for d, n in policy.decisions.items() if n
    })


if __name__ == "__main__":
    main()
